// Shared plumbing for the figure/table reproduction benches.
//
// Environment knobs:
//   STS_SCALE      - matrix scale factor vs the suite defaults (default
//                    0.2; 1.0 is the full container-sized suite).
//   STS_FULL_SUITE - 1 runs all 15 matrices; default runs the
//                    6-matrix representative subset.
//   STS_LOBPCG_NEV - LOBPCG block width (default 8).
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "sim/schedsim.hpp"
#include "sim/workloads.hpp"
#include "solvers/common.hpp"
#include "sparse/suite.hpp"
#include "support/env.hpp"
#include "support/table.hpp"
#include "tuning/block_select.hpp"

namespace sts::bench {

inline double scale() { return support::env_double("STS_SCALE", 0.2); }

inline std::vector<std::string> matrix_names() {
  if (support::env_int("STS_FULL_SUITE", 0) != 0) {
    std::vector<std::string> names;
    for (const auto& e : sparse::paper_suite()) names.push_back(e.name);
    return names;
  }
  return sparse::default_bench_subset();
}

struct BenchMatrix {
  std::string name;
  sparse::Coo coo;
  sparse::Csr csr;
};

inline BenchMatrix load(const std::string& name) {
  const sparse::SuiteEntry& entry = sparse::suite_entry(name);
  sparse::Coo coo = entry.make(scale());
  sparse::Csr csr = sparse::Csr::from_coo(coo);
  return {name, std::move(coo), std::move(csr)};
}

/// Simulator policy + layout/graph choice for a solver version.
inline sim::SimResult simulate_version(solver::Version v,
                                       const sim::Workload& wl,
                                       const sim::MachineModel& machine,
                                       sim::SimOptions options) {
  switch (v) {
    case solver::Version::kLibCsr:
      options.policy = sim::Policy::kBsp;
      return sim::simulate_bsp(wl.csr_graph, *wl.csr_layout, machine,
                               options);
    case solver::Version::kLibCsb:
      options.policy = sim::Policy::kBsp;
      return sim::simulate_bsp(wl.task_graph, *wl.layout, machine, options);
    case solver::Version::kDs:
      options.policy = sim::Policy::kDsTopo;
      return sim::simulate_task_graph(wl.task_graph, *wl.layout, machine,
                                      options);
    case solver::Version::kFlux:
      options.policy = sim::Policy::kFluxWs;
      options.numa_aware = machine.numa_domains > 1;
      return sim::simulate_task_graph(wl.task_graph, *wl.layout, machine,
                                      options);
    case solver::Version::kRgt:
      options.policy = sim::Policy::kRgtWindow;
      options.util_threads = machine.cores >= 64 ? 18 : 4; // paper -ll:util
      return sim::simulate_task_graph(wl.task_graph, *wl.layout, machine,
                                      options);
  }
  throw support::Error("unknown version");
}

/// Block size for a (version, machine, matrix) via the paper's heuristic.
inline la::index_t pick_block(solver::Version v,
                              const sim::MachineModel& machine,
                              la::index_t rows) {
  return tune::recommended_block_size(v, machine.cores, rows);
}

enum class Solver { kLanczos, kLobpcg };

inline sim::Workload build_workload(Solver s, const BenchMatrix& m,
                                    la::index_t block) {
  sparse::Csb csb = sparse::Csb::from_coo(m.coo, block);
  if (s == Solver::kLanczos) {
    return sim::build_lanczos_workload(m.csr, csb, 21);
  }
  const la::index_t nev =
      support::env_int("STS_LOBPCG_NEV", 8);
  return sim::build_lobpcg_workload(m.csr, csb, nev);
}

inline void print_header(const std::string& title) {
  std::cout << "\n=== " << title << " ===\n"
            << "(scale " << scale() << ", "
            << (support::env_int("STS_FULL_SUITE", 0) != 0 ? "full suite"
                                                           : "subset")
            << ")\n\n";
}

} // namespace sts::bench
