// Fig. 5: effect of the first-touch placement policy on DeepSparse Lanczos,
// EPYC model (8 NUMA domains). The paper reports up to 2.5x for small and
// mid-sized matrices.
#include "bench_common.hpp"

int main() {
  using namespace sts;
  bench::print_header(
      "Fig 5: DeepSparse Lanczos on EPYC w.r.t. first-touch policy");

  const sim::MachineModel machine = sim::MachineModel::epyc7h12();
  support::Table t({"matrix", "no first-touch (s)", "first-touch (s)",
                    "improvement"});
  for (const std::string& name : bench::matrix_names()) {
    const bench::BenchMatrix m = bench::load(name);
    const la::index_t block =
        bench::pick_block(solver::Version::kDs, machine, m.coo.rows());
    const sim::Workload wl =
        bench::build_workload(bench::Solver::kLanczos, m, block);

    sim::SimOptions off;
    off.first_touch = false;
    const sim::SimResult r_off =
        bench::simulate_version(solver::Version::kDs, wl, machine, off);
    sim::SimOptions on;
    on.first_touch = true;
    const sim::SimResult r_on =
        bench::simulate_version(solver::Version::kDs, wl, machine, on);

    t.row()
        .add(name)
        .add(r_off.makespan_seconds, 5)
        .add(r_on.makespan_seconds, 5)
        .add(r_off.makespan_seconds / r_on.makespan_seconds, 2);
  }
  t.print(std::cout);
  t.write_csv_file("fig5_first_touch.csv");
  return 0;
}
