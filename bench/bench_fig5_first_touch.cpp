// Fig. 5: effect of the first-touch placement policy on DeepSparse Lanczos.
// The paper reports up to 2.5x for small and mid-sized matrices on EPYC
// (8 NUMA domains).
//
// Two parts:
//   1. The simulator study on the EPYC model (the paper's configuration,
//      independent of the host) -> fig5_first_touch.csv, as before.
//   2. A native microbench on the real flux scheduler: block-row SpMV with
//      no hints on a flat scheduler vs. owner-hinted tasks on a NUMA-aware
//      one over a domain-partitioned (place_csb) CSB. Per-tier steal counts
//      from Scheduler::stats() are exported as counters so the JSON shows
//      pinned+owned doing strictly fewer cross-domain steals than the
//      unpinned baseline -> BENCH_numa.json (override: $STS_BENCH_JSON).
#include <benchmark/benchmark.h>

#include <span>
#include <vector>

#include "bench_common.hpp"
#include "bench_json.hpp"
#include "flux/scheduler.hpp"
#include "sparse/csb.hpp"
#include "support/topology.hpp"

namespace {

using namespace sts;

void run_sim_table() {
  bench::print_header(
      "Fig 5: DeepSparse Lanczos on EPYC w.r.t. first-touch policy");

  const sim::MachineModel machine = sim::MachineModel::epyc7h12();
  support::Table t({"matrix", "no first-touch (s)", "first-touch (s)",
                    "improvement"});
  for (const std::string& name : bench::matrix_names()) {
    const bench::BenchMatrix m = bench::load(name);
    const la::index_t block =
        bench::pick_block(solver::Version::kDs, machine, m.coo.rows());
    const sim::Workload wl =
        bench::build_workload(bench::Solver::kLanczos, m, block);

    sim::SimOptions off;
    off.first_touch = false;
    const sim::SimResult r_off =
        bench::simulate_version(solver::Version::kDs, wl, machine, off);
    sim::SimOptions on;
    on.first_touch = true;
    const sim::SimResult r_on =
        bench::simulate_version(solver::Version::kDs, wl, machine, on);

    t.row()
        .add(name)
        .add(r_off.makespan_seconds, 5)
        .add(r_on.makespan_seconds, 5)
        .add(r_off.makespan_seconds / r_on.makespan_seconds, 2);
  }
  t.print(std::cout);
  t.write_csv_file("fig5_first_touch.csv");
}

// Native comparison. `owned` selects the full topology path: NUMA-aware
// hierarchical stealing, STS_AFFINITY pinning, place_csb stripe placement,
// and owner domain hints on every block-row task. The baseline keeps the
// same worker/domain split but flat stealing, no pinning, and no hints, so
// the counter deltas isolate the placement + hint policy.
void run_spmv(benchmark::State& state, bool owned) {
  const unsigned domains =
      std::max(2u, support::topo::machine().node_count());
  const unsigned threads = 2 * domains; // >= 2 workers per domain

  const bench::BenchMatrix m = bench::load(bench::matrix_names().front());
  const la::index_t block =
      tune::recommended_block_size(solver::Version::kFlux, threads,
                                   m.coo.rows());
  sparse::Csb a = sparse::Csb::from_coo(m.coo, block);

  flux::Scheduler::Config cfg;
  cfg.threads = threads;
  cfg.numa_domains = domains;
  cfg.numa_aware = owned;
  cfg.affinity = owned ? flux::Scheduler::Config::affinity_from_env()
                       : flux::Affinity::kOff;
  flux::Scheduler sched(cfg);

  sparse::Csb::DomainMap dmap = a.partition_block_rows(domains);
  if (owned) dmap = solver::place_csb(a, sched);

  const la::index_t nbr = a.block_rows();
  const la::index_t nbc = a.block_cols();
  std::vector<double> x(static_cast<std::size_t>(a.cols()), 1.0);
  std::vector<double> y(static_cast<std::size_t>(a.rows()), 0.0);

  for (auto _ : state) {
    for (la::index_t bi = 0; bi < nbr; ++bi) {
      const int hint = owned ? dmap.owner(bi) : -1;
      sched.submit(flux::Task([&a, &x, &y, bi, nbc] {
        sparse::csb_block_zero(a, bi, std::span<double>(y));
        for (la::index_t bj = 0; bj < nbc; ++bj) {
          sparse::csb_block_spmv(a, bi, bj, x, y);
        }
      }), hint);
    }
    sched.wait_for_quiescence();
    benchmark::DoNotOptimize(y.data());
  }

  const flux::Scheduler::Stats st = sched.stats();
  state.counters["domains"] = static_cast<double>(domains);
  state.counters["threads"] = static_cast<double>(threads);
  state.counters["steals"] = static_cast<double>(st.steals);
  state.counters["steals_sibling"] = static_cast<double>(st.steals_sibling);
  state.counters["steals_local"] = static_cast<double>(st.steals_local);
  state.counters["steals_remote"] = static_cast<double>(st.steals_remote);
  state.counters["cross_domain_steals"] =
      static_cast<double>(st.cross_domain_steals);
}

void BM_CsbSpmvUnpinnedFlat(benchmark::State& state) {
  run_spmv(state, /*owned=*/false);
}

void BM_CsbSpmvPinnedOwned(benchmark::State& state) {
  run_spmv(state, /*owned=*/true);
}

BENCHMARK(BM_CsbSpmvUnpinnedFlat)->UseRealTime();
BENCHMARK(BM_CsbSpmvPinnedOwned)->UseRealTime();

} // namespace

int main(int argc, char** argv) {
  run_sim_table();
  return sts::benchjson::run(argc, argv, "BENCH_numa.json");
}
