// Section 4 facts: per-iteration task-graph statistics. The paper reports
// critical path lengths of 5 (Lanczos) and 29 (LOBPCG) at function-call
// granularity, and task counts from 56 up to 6,570,446 per iteration
// depending on block and matrix size.
#include "bench_common.hpp"

int main() {
  using namespace sts;
  bench::print_header("Section 4: task graph statistics per iteration");

  support::Table t({"matrix", "solver", "block count", "tasks", "edges",
                    "crit path (tasks)", "crit path (calls)",
                    "max parallelism"});
  for (const std::string& name : bench::matrix_names()) {
    const bench::BenchMatrix m = bench::load(name);
    for (const bool lobpcg : {false, true}) {
      for (const la::index_t count : {8, 64, 256}) {
        if (m.coo.rows() < count) continue;
        const la::index_t block =
            tune::block_size_for_count(m.coo.rows(), count);
        sparse::Csb csb = sparse::Csb::from_coo(m.coo, block);
        const sim::Workload wl =
            lobpcg ? sim::build_lobpcg_workload(m.csr, csb, 8)
                   : sim::build_lanczos_workload(m.csr, csb, 21);
        // Function-call critical path: the number of distinct phases on
        // the longest path (the paper's 5 / 29 counting).
        const auto order = wl.task_graph.depth_first_topological_order();
        std::vector<std::int32_t> depth(wl.task_graph.task_count(), 0);
        std::int32_t call_path = 0;
        for (graph::TaskId u : order) {
          for (graph::TaskId v : wl.task_graph.successors(u)) {
            const bool new_phase =
                wl.task_graph.task(v).phase != wl.task_graph.task(u).phase;
            depth[static_cast<std::size_t>(v)] = std::max(
                depth[static_cast<std::size_t>(v)],
                depth[static_cast<std::size_t>(u)] + (new_phase ? 1 : 0));
            call_path =
                std::max(call_path, depth[static_cast<std::size_t>(v)]);
          }
        }
        t.row()
            .add(name)
            .add(lobpcg ? "lobpcg" : "lanczos")
            .add(static_cast<std::int64_t>(count))
            .add(static_cast<std::int64_t>(wl.task_graph.task_count()))
            .add(static_cast<std::int64_t>(wl.task_graph.edge_count()))
            .add(wl.task_graph.critical_path_tasks())
            .add(static_cast<std::int64_t>(call_path + 1))
            .add(wl.task_graph.max_parallelism());
      }
    }
  }
  t.print(std::cout);
  t.write_csv_file("dag_stats.csv");
  return 0;
}
