// CG and SpTRSV microbenchmarks (google-benchmark): the DAG-scheduled
// sparse triangular solve against its sequential baseline — the comparison
// at the heart of the paper's task-parallel argument, since SpTRSV (not
// SpMV) is where a runtime's scheduling overhead meets a real critical
// path — plus one full preconditioned CG solve per execution version.
// Results are exported to BENCH_cg.json (see bench_json.hpp); the SpTRSV
// rows carry level_span / block_rows / max_level_width counters so the
// regression checker can confirm the DAG shape did not silently change.
#include <benchmark/benchmark.h>

#include <vector>

#include "bench_json.hpp"
#include "flux/scheduler.hpp"
#include "la/sptrsv.hpp"
#include "solvers/cg.hpp"
#include "sparse/generators.hpp"
#include "sparse/ic0.hpp"
#include "support/rng.hpp"

namespace {

using namespace sts;

/// One IC(0) factor shared by every SpTRSV benchmark: a scattered
/// block-random SPD-ified matrix rather than a Laplacian, because banded
/// stencils level-schedule into near-chains (one block per wave) while the
/// scattered pattern yields the wide DAG the task runtimes are built for.
struct Factor {
  sparse::Csr lower_csr;
  sparse::Csb lower;
  la::SptrsvPlan plan;

  explicit Factor(la::index_t block) {
    sparse::Coo coo = sparse::gen_block_random(64, 24, 0.035, 0.6, 7);
    // Shift the diagonal far into dominance so IC(0) succeeds unshifted
    // and pivots stay well-scaled.
    const la::index_t n = coo.rows();
    for (la::index_t i = 0; i < n; ++i) coo.add(i, i, 40.0);
    coo.finalize();
    const sparse::Csr a = sparse::Csr::from_coo(coo);
    lower_csr = sparse::ic0_factor(a).lower;
    lower = sparse::Csb::from_csr(lower_csr, block);
    plan = la::SptrsvPlan::build(lower);
  }
};

Factor& factor(la::index_t block) {
  static Factor f16(16);
  static Factor f64(64);
  return block == 16 ? f16 : f64;
}

void set_dag_counters(benchmark::State& state, const la::SptrsvPlan& plan) {
  state.counters["level_span"] = static_cast<double>(plan.level_span());
  state.counters["block_rows"] = static_cast<double>(plan.block_rows());
  state.counters["max_level_width"] =
      static_cast<double>(plan.max_level_width());
}

void BM_SptrsvSequential(benchmark::State& state) {
  Factor& f = factor(state.range(0));
  const la::index_t n = f.lower.rows();
  std::vector<double> b(static_cast<std::size_t>(n), 1.0);
  std::vector<double> x(static_cast<std::size_t>(n));
  for (auto _ : state) {
    la::sptrsv_forward(f.lower, f.plan, b, x);
    la::sptrsv_backward(f.lower, f.plan, x, x);
    benchmark::DoNotOptimize(x.data());
  }
  set_dag_counters(state, f.plan);
  state.SetItemsProcessed(state.iterations() * 2 * f.lower_csr.nnz());
}
BENCHMARK(BM_SptrsvSequential)->Arg(16)->Arg(64);

void BM_SptrsvDag(benchmark::State& state) {
  Factor& f = factor(state.range(0));
  const la::index_t n = f.lower.rows();
  std::vector<double> b(static_cast<std::size_t>(n), 1.0);
  std::vector<double> x(static_cast<std::size_t>(n));
  flux::Scheduler::Config cfg;
  cfg.threads = static_cast<unsigned>(state.range(1));
  flux::Scheduler sched(cfg);
  for (auto _ : state) {
    la::sptrsv_forward(f.lower, f.plan, b, x, sched, nullptr);
    la::sptrsv_backward(f.lower, f.plan, x, x, sched, nullptr);
    benchmark::DoNotOptimize(x.data());
  }
  set_dag_counters(state, f.plan);
  state.SetItemsProcessed(state.iterations() * 2 * f.lower_csr.nnz());
}
BENCHMARK(BM_SptrsvDag)
    ->Args({16, 2})
    ->Args({16, 4})
    ->Args({64, 2})
    ->Args({64, 4});

/// Full preconditioned solve per execution version on the SPD Laplacian
/// (ic0 preconditioner, fixed tolerance) — end-to-end iteration cost, with
/// the converged iteration count exported as a counter.
void cg_solve(benchmark::State& state, solver::Version version) {
  const sparse::Coo coo = sparse::gen_laplacian3d(12, 12, 12, 1, 101);
  const sparse::Csr csr = sparse::Csr::from_coo(coo);
  const sparse::Csb csb = sparse::Csb::from_csr(csr, 64);
  solver::CgOptions cg_options;
  cg_options.precond = solver::Precond::kIc0;
  cg_options.tol = 1e-8;
  cg_options.max_iterations = 200;
  solver::SolverOptions options;
  options.block_size = 64;
  options.threads = 2;
  int iterations = 0;
  for (auto _ : state) {
    const solver::CgResult r = solver::cg(csr, csb, version, cg_options,
                                          options);
    iterations = r.iterations;
    benchmark::DoNotOptimize(r.relative_residual);
  }
  state.counters["iterations"] = iterations;
}

void BM_CgLibCsr(benchmark::State& state) {
  cg_solve(state, solver::Version::kLibCsr);
}
void BM_CgLibCsb(benchmark::State& state) {
  cg_solve(state, solver::Version::kLibCsb);
}
void BM_CgFlux(benchmark::State& state) {
  cg_solve(state, solver::Version::kFlux);
}
BENCHMARK(BM_CgLibCsr);
BENCHMARK(BM_CgLibCsb);
BENCHMARK(BM_CgFlux);

} // namespace

int main(int argc, char** argv) {
  return sts::benchjson::run(argc, argv, "BENCH_cg.json");
}
