// Fig. 13: execution flow graphs of LOBPCG (nlpkkt240-like) for libcsb,
// DeepSparse and HPX. The task versions pipeline kernels (overlapping
// per-kernel activity windows); HPX's schedule is visibly more "shuffled"
// than DeepSparse's spawn-order-respecting one.
#include "bench_common.hpp"

#include <fstream>

namespace {

void flow_for(const char* label, sts::solver::Version v,
              const sts::sim::MachineModel& machine,
              const sts::bench::BenchMatrix& m) {
  using namespace sts;
  const la::index_t block = bench::pick_block(v, machine, m.coo.rows());
  const sim::Workload wl =
      bench::build_workload(bench::Solver::kLobpcg, m, block);
  sim::SimOptions o;
  o.record_events = true;
  const sim::SimResult r = bench::simulate_version(v, wl, machine, o);
  std::cout << "\n-- " << label << " on " << machine.name << " (makespan "
            << support::format_double(r.makespan_seconds * 1e3, 3)
            << " ms, busy "
            << support::format_double(r.busy_fraction * 100, 1) << "%) --\n";
  const perf::FlowGraph fg = perf::build_flow_graph(r.events, 96);
  perf::render_flow_graph(std::cout, fg);
  std::ofstream csv(std::string("fig13_flow_") + label + "_" + machine.name +
                    ".csv");
  perf::write_flow_graph_csv(csv, fg);
}

} // namespace

int main() {
  using namespace sts;
  bench::print_header(
      "Fig 13: LOBPCG execution flow graphs (nlpkkt240-like)");
  const bench::BenchMatrix m = bench::load("nlpkkt240");
  for (const sim::MachineModel& machine :
       {sim::MachineModel::broadwell(), sim::MachineModel::epyc7h12()}) {
    flow_for("libcsb", solver::Version::kLibCsb, machine, m);
    flow_for("deepsparse", solver::Version::kDs, machine, m);
    flow_for("hpx", solver::Version::kFlux, machine, m);
  }
  std::cout << "\nCSV series written to fig13_flow_*.csv\n";
  return 0;
}
