// Fig. 10: execution flow graphs of Lanczos (nlpkkt240-like) — per-kernel
// concurrency over time for libcsb vs the task runtimes on both machine
// models, showing how the manycore model fills SpMV load-imbalance gaps
// with successor tasks.
#include "bench_common.hpp"

#include <fstream>

namespace {

void flow_for(const char* label, sts::solver::Version v,
              const sts::sim::MachineModel& machine,
              const sts::bench::BenchMatrix& m) {
  using namespace sts;
  const la::index_t block = bench::pick_block(v, machine, m.coo.rows());
  const sim::Workload wl =
      bench::build_workload(bench::Solver::kLanczos, m, block);
  sim::SimOptions o;
  o.record_events = true;
  const sim::SimResult r = bench::simulate_version(v, wl, machine, o);
  std::cout << "\n-- " << label << " on " << machine.name << " (makespan "
            << support::format_double(r.makespan_seconds * 1e3, 3)
            << " ms, busy "
            << support::format_double(r.busy_fraction * 100, 1) << "%) --\n";
  const perf::FlowGraph fg = perf::build_flow_graph(r.events, 96);
  perf::render_flow_graph(std::cout, fg);
  std::ofstream csv(std::string("fig10_flow_") + label + "_" + machine.name +
                    ".csv");
  perf::write_flow_graph_csv(csv, fg);
}

} // namespace

int main() {
  using namespace sts;
  bench::print_header(
      "Fig 10: Lanczos execution flow graphs (nlpkkt240-like)");
  const bench::BenchMatrix m = bench::load("nlpkkt240");
  for (const sim::MachineModel& machine :
       {sim::MachineModel::broadwell(), sim::MachineModel::epyc7h12()}) {
    flow_for("libcsb", solver::Version::kLibCsb, machine, m);
    flow_for("deepsparse", solver::Version::kDs, machine, m);
    flow_for("hpx", solver::Version::kFlux, machine, m);
  }
  std::cout << "\nCSV series written to fig10_flow_*.csv\n";
  return 0;
}
