// Observability overhead microbenchmarks, exported to BENCH_obs.json (see
// bench_json.hpp). The obs layer's contract is "near-zero cost when off":
// every instrumentation site gates on one relaxed atomic load. These
// benchmarks put numbers on that claim, and on the price of each collector
// when it is on:
//
//   - counter/histogram writes (the always-hot primitives),
//   - coherent histogram + registry snapshots (the scrape path),
//   - Prometheus text rendering,
//   - publish_task with everything off, with metrics, and inside a per-job
//     trace capture window,
//   - the profiler's TaskMark with sampling off and on,
//   - IterScope with telemetry off and with metrics enabled.
#include <benchmark/benchmark.h>

#include <sstream>

#include "bench_json.hpp"
#include "obs/expo.hpp"
#include "obs/obs.hpp"
#include "support/timer.hpp"

namespace {

using namespace sts;

void BM_CounterAdd(benchmark::State& state) {
  obs::Counter& c = obs::counter("bench.counter");
  for (auto _ : state) {
    c.add(1);
  }
  benchmark::DoNotOptimize(c.value());
}
BENCHMARK(BM_CounterAdd);

void BM_HistogramObserve(benchmark::State& state) {
  obs::Histogram& h = obs::histogram("bench.hist");
  std::int64_t v = 1;
  for (auto _ : state) {
    h.observe(v);
    v = (v * 2 + 1) & 0xFFFFF; // walk the buckets
  }
}
BENCHMARK(BM_HistogramObserve);

void BM_HistogramObserveContended(benchmark::State& state) {
  obs::Histogram& h = obs::histogram("bench.hist_contended");
  for (auto _ : state) {
    h.observe(4096);
  }
}
BENCHMARK(BM_HistogramObserveContended)->Threads(4);

void BM_HistogramSnapshot(benchmark::State& state) {
  obs::Histogram& h = obs::histogram("bench.hist_snap");
  for (int i = 0; i < 10000; ++i) h.observe(i);
  for (auto _ : state) {
    const obs::Histogram::Snapshot s = h.snapshot();
    benchmark::DoNotOptimize(s.count);
  }
}
BENCHMARK(BM_HistogramSnapshot);

void BM_RegistrySnapshot(benchmark::State& state) {
  // A registry populated the way a real run leaves it: a few dozen series.
  for (int i = 0; i < 32; ++i) {
    obs::counter("bench.reg.c" + std::to_string(i)).add(1);
    obs::histogram("bench.reg.h" + std::to_string(i)).observe(i * 100);
  }
  for (auto _ : state) {
    const obs::RegistrySnapshot snap = obs::Registry::instance().snapshot();
    benchmark::DoNotOptimize(snap.histograms.size());
  }
}
BENCHMARK(BM_RegistrySnapshot);

void BM_PrometheusRender(benchmark::State& state) {
  for (int i = 0; i < 32; ++i) {
    obs::counter("bench.prom.c" + std::to_string(i)).add(1);
    obs::histogram("bench.prom.h" + std::to_string(i)).observe(i * 100);
  }
  for (auto _ : state) {
    std::ostringstream os;
    obs::write_prometheus(os);
    benchmark::DoNotOptimize(os.str().size());
  }
}
BENCHMARK(BM_PrometheusRender);

perf::TaskEvent bench_event() {
  perf::TaskEvent ev;
  ev.task_id = 1;
  ev.kind = graph::KernelKind::kSpMV;
  ev.worker = 0;
  ev.start_ns = support::now_ns();
  ev.end_ns = ev.start_ns + 1000;
  return ev;
}

void BM_PublishTaskOff(benchmark::State& state) {
  obs::disable();
  const perf::TaskEvent ev = bench_event();
  for (auto _ : state) {
    obs::publish_task("bench", ev, nullptr);
  }
}
BENCHMARK(BM_PublishTaskOff);

void BM_PublishTaskMetrics(benchmark::State& state) {
  obs::enable_metrics(""); // collect only
  const perf::TaskEvent ev = bench_event();
  for (auto _ : state) {
    obs::publish_task("bench", ev, nullptr);
  }
  obs::disable();
}
BENCHMARK(BM_PublishTaskMetrics);

void BM_PublishTaskJobCapture(benchmark::State& state) {
  // The stsd live path: no global tracing, but a per-job capture window is
  // open, so every event also lands in the byte-bounded ring.
  obs::disable();
  obs::set_job_trace_capacity(std::size_t{4} << 20);
  obs::begin_job_trace(1, "bench-trace");
  const perf::TaskEvent ev = bench_event();
  for (auto _ : state) {
    obs::publish_task("bench", ev, nullptr);
  }
  obs::end_job_trace();
}
BENCHMARK(BM_PublishTaskJobCapture);

void BM_TaskMarkOff(benchmark::State& state) {
  obs::prof::stop_sampling();
  for (auto _ : state) {
    const obs::prof::TaskMark mark("bench", graph::KernelKind::kSpMV);
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_TaskMarkOff);

void BM_TaskMarkSampling(benchmark::State& state) {
  obs::prof::start_sampling(97.0); // modest rate; publish cost is the point
  for (auto _ : state) {
    const obs::prof::TaskMark mark("bench", graph::KernelKind::kSpMV);
    benchmark::ClobberMemory();
  }
  obs::prof::stop_sampling();
  obs::prof::reset_samples();
}
BENCHMARK(BM_TaskMarkSampling);

void BM_IterScopeOff(benchmark::State& state) {
  obs::disable();
  int i = 0;
  for (auto _ : state) {
    obs::IterScope iter("bench.solver", i++);
    iter.metric("beta", 1.0);
  }
}
BENCHMARK(BM_IterScopeOff);

void BM_IterScopeMetrics(benchmark::State& state) {
  obs::enable_metrics("");
  int i = 0;
  for (auto _ : state) {
    obs::IterScope iter("bench.solver", i++);
    iter.metric("beta", 1.0);
  }
  obs::disable();
}
BENCHMARK(BM_IterScopeMetrics);

} // namespace

int main(int argc, char** argv) {
  return sts::benchjson::run(argc, argv, "BENCH_obs.json");
}
