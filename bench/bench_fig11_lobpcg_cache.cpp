// Fig. 11: L1 / L2 / LLC misses of the five LOBPCG versions on the
// Broadwell model, normalized to libcsr. Paper: the task runtimes achieve
// 2.8-13.7x fewer L1, 3.7-13.1x fewer L2 and 1.4-6.2x fewer L3 misses
// thanks to pipelined per-piece execution across kernels.
#include "bench_common.hpp"

#include <array>

int main() {
  using namespace sts;
  bench::print_header("Fig 11: LOBPCG cache misses on Broadwell "
                      "(normalized to libcsr; lower is better)");

  const sim::MachineModel machine = sim::MachineModel::broadwell();
  support::Table t({"matrix", "level", "libcsr", "libcsb", "deepsparse",
                    "hpx-flux", "regent-rgt"});
  for (const std::string& name : bench::matrix_names()) {
    const bench::BenchMatrix m = bench::load(name);
    std::vector<std::array<double, 3>> misses;
    for (solver::Version v : solver::kAllVersions) {
      const la::index_t block = bench::pick_block(v, machine, m.coo.rows());
      const sim::Workload wl =
          bench::build_workload(bench::Solver::kLobpcg, m, block);
      sim::SimOptions o;
      const sim::SimResult r = bench::simulate_version(v, wl, machine, o);
      misses.push_back({static_cast<double>(r.misses.l1_misses),
                        static_cast<double>(r.misses.l2_misses),
                        static_cast<double>(r.misses.l3_misses)});
    }
    const char* levels[3] = {"L1", "L2", "LLC"};
    for (int lvl = 0; lvl < 3; ++lvl) {
      t.row().add(name).add(levels[lvl]);
      const double base = misses[0][static_cast<std::size_t>(lvl)];
      for (const auto& v : misses) {
        t.add(base > 0 ? v[static_cast<std::size_t>(lvl)] / base : 0.0, 3);
      }
    }
  }
  t.print(std::cout);
  t.write_csv_file("fig11_lobpcg_cache.csv");
  return 0;
}
