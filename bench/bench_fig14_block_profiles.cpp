// Fig. 14: performance profiles of the six block-count buckets (8-15 ...
// 256-511) for DeepSparse, HPX and Regent LOBPCG on both machine models.
// Paper findings to reproduce: DS best at 32-63 (Broadwell) / 64-127
// (EPYC), HPX best at 64-127, Regent best at 16-31 with severe slowdowns
// beyond 64 blocks.
#include "bench_common.hpp"

#include "perf/profiles.hpp"

namespace {

void run(const sts::sim::MachineModel& machine, sts::solver::Version v) {
  using namespace sts;
  const auto buckets = tune::heuristic_buckets();
  std::vector<std::string> labels;
  for (const auto& b : buckets) labels.push_back(b.label());

  std::vector<std::vector<double>> times; // [matrix][bucket]
  for (const std::string& name : bench::matrix_names()) {
    const bench::BenchMatrix m = bench::load(name);
    std::vector<double> row;
    for (const auto& bucket : buckets) {
      const la::index_t block =
          tune::block_size_for_bucket(m.coo.rows(), bucket);
      if (block == 0) {
        row.push_back(-1.0); // matrix too small for this bucket
        continue;
      }
      const sim::Workload wl =
          bench::build_workload(bench::Solver::kLobpcg, m, block);
      sim::SimOptions o;
      const sim::SimResult r = bench::simulate_version(v, wl, machine, o);
      row.push_back(r.makespan_seconds);
    }
    times.push_back(std::move(row));
  }

  const auto taus = perf::default_taus(11);
  const auto curves = perf::performance_profiles(labels, times, taus);
  std::cout << "\n-- " << solver::to_string(v) << " on " << machine.name
            << " --\n";
  support::Table t({"block count", "tau=1.0", "1.2", "1.4", "1.6", "1.8",
                    "2.0"});
  for (const auto& c : curves) {
    t.row().add(c.config);
    for (std::size_t k = 0; k < taus.size(); k += 2) {
      t.add(c.fraction[k], 2);
    }
  }
  t.print(std::cout);
  t.write_csv_file(std::string("fig14_profiles_") + solver::to_string(v) +
                   "_" + machine.name + ".csv");
}

} // namespace

int main() {
  using namespace sts;
  bench::print_header("Fig 14: block-count performance profiles (LOBPCG)");
  for (const sim::MachineModel& machine :
       {sim::MachineModel::broadwell(), sim::MachineModel::epyc7h12()}) {
    for (solver::Version v :
         {solver::Version::kDs, solver::Version::kFlux,
          solver::Version::kRgt}) {
      run(machine, v);
    }
  }
  return 0;
}
