// Microbenchmarks (google-benchmark) of the runtime substrates themselves:
// flux task spawn/dataflow overhead, rgt dependence analysis throughput
// (with and without dynamic tracing), and ds graph build + execution
// overhead. These are the per-task costs the paper's block-size heuristic
// (Fig. 14) trades against parallelism. The spawn/execute benchmarks take
// an Arg(0)/Arg(1) telemetry toggle so the obs-layer overhead (the ≤2%
// budget from DESIGN.md) is measurable as a same-binary delta.
#include <benchmark/benchmark.h>

#include "bench_json.hpp"
#include "ds/executor.hpp"
#include "ds/program.hpp"
#include "flux/dataflow.hpp"
#include "obs/obs.hpp"
#include "rgt/runtime.hpp"
#include "sparse/generators.hpp"

namespace {

/// Scoped telemetry toggle: Arg(1) runs with the metrics registry active
/// (buffer-only, nothing written), Arg(0) with telemetry fully off.
class ScopedTelemetry {
public:
  explicit ScopedTelemetry(bool on) : on_(on) {
    if (on_) sts::obs::enable_metrics("");
  }
  ~ScopedTelemetry() {
    if (on_) sts::obs::disable();
  }

private:
  bool on_;
};

} // namespace

namespace {

using namespace sts;

void BM_FluxSpawn(benchmark::State& state) {
  const ScopedTelemetry telemetry(state.range(0) != 0);
  flux::Scheduler sched({.threads = 2});
  for (auto _ : state) {
    std::atomic<int> c{0};
    const int n = 1024;
    for (int i = 0; i < n; ++i) sched.submit([&c] { c.fetch_add(1); });
    sched.wait_for_quiescence();
    benchmark::DoNotOptimize(c.load());
  }
  state.SetItemsProcessed(state.iterations() * 1024);
  state.SetLabel(state.range(0) != 0 ? "telemetry on" : "telemetry off");
}
BENCHMARK(BM_FluxSpawn)->Arg(0)->Arg(1);

// Worker-local spawn: tasks submitted from inside a running task hit the
// lock-free ring + inline-Task fast path (no mutex, no allocation), the
// dominant submission pattern in the solvers' fork phases.
void BM_FluxSpawnLocal(benchmark::State& state) {
  const ScopedTelemetry telemetry(state.range(0) != 0);
  flux::Scheduler sched({.threads = 2});
  for (auto _ : state) {
    std::atomic<int> c{0};
    const int n = 1024;
    sched.submit([&sched, &c, n] {
      for (int i = 0; i < n; ++i) sched.submit([&c] { c.fetch_add(1); });
    });
    sched.wait_for_quiescence();
    benchmark::DoNotOptimize(c.load());
  }
  state.SetItemsProcessed(state.iterations() * 1024);
  state.SetLabel(state.range(0) != 0 ? "telemetry on" : "telemetry off");
}
BENCHMARK(BM_FluxSpawnLocal)->Arg(0)->Arg(1);

void BM_FluxDataflowChain(benchmark::State& state) {
  flux::Scheduler sched({.threads = 2});
  for (auto _ : state) {
    flux::shared_future<void> chain = flux::make_ready_future();
    for (int i = 0; i < 512; ++i) {
      chain = flux::dataflow(sched, flux::unwrapping([] {}), chain).share();
    }
    chain.get();
    sched.wait_for_quiescence();
  }
  state.SetItemsProcessed(state.iterations() * 512);
}
BENCHMARK(BM_FluxDataflowChain);

void BM_RgtAnalysis(benchmark::State& state) {
  const bool traced = state.range(0) != 0;
  std::vector<double> data(1024, 0.0);
  rgt::Runtime rt({.cpu_workers = 2});
  const rgt::RegionId r = rt.register_region(data, "d");
  rt.partition_equal(r, 64);
  int trace_id = 0;
  for (auto _ : state) {
    if (traced) rt.begin_trace(trace_id);
    for (std::int32_t p = 0; p < 64; ++p) {
      rt.execute({[](rgt::TaskContext&) {},
                  {{r, p, rgt::Privilege::kReadWrite}},
                  "t"});
    }
    if (traced) rt.end_trace(trace_id);
    rt.wait_all();
  }
  state.SetItemsProcessed(state.iterations() * 64);
  state.SetLabel(traced ? "dynamic tracing" : "full analysis");
}
BENCHMARK(BM_RgtAnalysis)->Arg(0)->Arg(1);

void BM_DsGraphBuild(benchmark::State& state) {
  sparse::Coo coo = sparse::gen_fem3d(12, 12, 12, 1, 9);
  sparse::Csb csb = sparse::Csb::from_coo(coo, state.range(0));
  la::DenseMatrix x(csb.rows(), 8);
  la::DenseMatrix y(csb.rows(), 8);
  for (auto _ : state) {
    ds::Program prog(&csb, {});
    prog.spmm(prog.vec("x", &x), prog.vec("y", &y));
    const graph::Tdg g = prog.build();
    benchmark::DoNotOptimize(g.task_count());
  }
}
BENCHMARK(BM_DsGraphBuild)->Arg(64)->Arg(256)->Arg(1024);

void BM_DsExecuteOverhead(benchmark::State& state) {
  const ScopedTelemetry telemetry(state.range(0) != 0);
  // Pure overhead: empty-bodied graph of independent tasks.
  graph::Tdg g;
  for (int i = 0; i < 1024; ++i) {
    graph::Task t;
    t.body = [] {};
    g.add_task(std::move(t));
  }
  for (auto _ : state) {
    ds::execute(g, {.mode = ds::ExecMode::kOmpTasks, .trace = nullptr});
  }
  state.SetItemsProcessed(state.iterations() * 1024);
  state.SetLabel(state.range(0) != 0 ? "telemetry on" : "telemetry off");
}
BENCHMARK(BM_DsExecuteOverhead)->Arg(0)->Arg(1);

} // namespace

int main(int argc, char** argv) {
  return sts::benchjson::run(argc, argv, "BENCH_runtime.json");
}
