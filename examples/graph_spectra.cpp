// Spectral analysis of a power-law graph (the paper's twitter7 / web-graph
// workloads): the largest adjacency eigenvalues of an R-MAT graph are
// computed with Lanczos under the Regent-style (rgt) runtime, demonstrating
// region/privilege-based tasking on an extremely load-imbalanced matrix.
//
//   ./graph_spectra [rmat-scale] [edge-factor]
#include <cstdio>
#include <cstdlib>

#include "solvers/lanczos.hpp"
#include "sparse/generators.hpp"
#include "sparse/stats.hpp"
#include "tuning/block_select.hpp"

int main(int argc, char** argv) {
  using namespace sts;
  const int scale = argc > 1 ? std::atoi(argv[1]) : 12;
  const int edge_factor = argc > 2 ? std::atoi(argv[2]) : 8;

  sparse::Coo coo = sparse::gen_rmat(scale, edge_factor, 0.57, 0.19, 0.19,
                                     /*seed=*/2024);
  sparse::Csr csr = sparse::Csr::from_coo(coo);
  const sparse::MatrixStats stats = sparse::compute_stats(csr);
  std::printf("R-MAT graph: %lld vertices, %lld (symmetrized) edges\n",
              static_cast<long long>(stats.rows),
              static_cast<long long>(stats.nnz));
  std::printf("degree skew: avg %.1f, max %lld, cv %.2f -- the load\n"
              "imbalance that defeats BSP row partitioning\n",
              stats.avg_row_nnz, static_cast<long long>(stats.max_row_nnz),
              stats.row_nnz_cv);

  // Regent prefers coarse tasks (paper section 5.4: 16-31 blocks).
  const la::index_t block = tune::recommended_block_size(
      solver::Version::kRgt, 2, coo.rows());
  sparse::Csb csb = sparse::Csb::from_coo(coo, block);
  std::printf("CSB: %lld x %lld blocks of %lld rows, %.0f%% empty\n",
              static_cast<long long>(csb.block_rows()),
              static_cast<long long>(csb.block_cols()),
              static_cast<long long>(block),
              100.0 * (1.0 - static_cast<double>(csb.nonempty_blocks()) /
                                 static_cast<double>(csb.block_rows() *
                                                     csb.block_cols())));

  solver::SolverOptions options;
  options.block_size = block;
  options.threads = 2;
  const solver::LanczosResult r =
      solver::lanczos(csr, csb, /*k=*/40, solver::Version::kRgt, options);

  std::printf("\ntop-5 adjacency eigenvalues (Lanczos + rgt runtime, %.3f s):\n",
              r.timing.total_seconds);
  const std::size_t n = r.ritz_values.size();
  for (std::size_t i = 0; i < 5 && i < n; ++i) {
    std::printf("  mu_%zu = %.6f\n", i, r.ritz_values[n - 1 - i]);
  }
  std::printf("(mu_0 bounds: max degree %lld >= mu_0 >= avg degree %.1f)\n",
              static_cast<long long>(stats.max_row_nnz), stats.avg_row_nnz);
  return 0;
}
