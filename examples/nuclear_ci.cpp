// Nuclear configuration-interaction ground state (the paper's Nm7 use
// case): a block-sparse CI-Hamiltonian-like matrix whose lowest eigenvalue
// (the ground-state energy analogue) is computed with the DeepSparse-style
// task-parallel Lanczos solver, then cross-checked against LOBPCG.
//
//   ./nuclear_ci [n_blocks] [block_dim]
#include <cstdio>
#include <cstdlib>

#include "solvers/lanczos.hpp"
#include "solvers/lobpcg.hpp"
#include "sparse/generators.hpp"
#include "sparse/stats.hpp"
#include "tuning/block_select.hpp"

int main(int argc, char** argv) {
  using namespace sts;
  const la::index_t n_blocks = argc > 1 ? std::atoll(argv[1]) : 200;
  const la::index_t block_dim = argc > 2 ? std::atoll(argv[2]) : 16;

  sparse::Coo coo =
      sparse::gen_block_random(n_blocks, block_dim, /*fill_prob=*/0.02,
                               /*entry_prob=*/0.6, /*seed=*/42);
  sparse::Csr csr = sparse::Csr::from_coo(coo);
  const sparse::MatrixStats stats = sparse::compute_stats(csr);
  std::printf("CI Hamiltonian analogue: %lld basis states, %lld matrix "
              "elements (avg %.1f per row, max %lld)\n",
              static_cast<long long>(stats.rows),
              static_cast<long long>(stats.nnz), stats.avg_row_nnz,
              static_cast<long long>(stats.max_row_nnz));

  const la::index_t block = tune::recommended_block_size(
      solver::Version::kDs, 2, coo.rows());
  sparse::Csb csb = sparse::Csb::from_coo(coo, block);

  // Lanczos: lowest state via the spectrum's edge.
  solver::SolverOptions lanczos_opts;
  lanczos_opts.block_size = block;
  lanczos_opts.threads = 2;
  const solver::LanczosResult lr =
      solver::lanczos(csr, csb, /*k=*/60, solver::Version::kDs, lanczos_opts);
  std::printf("\nLanczos (deepsparse): E0 ~ %.8f  (60 iterations, %.3f s, "
              "graph build %.4f s)\n",
              lr.ritz_values.front(), lr.timing.total_seconds,
              lr.timing.graph_build_seconds);

  // LOBPCG cross-check of the lowest 4 states.
  solver::LobpcgOptions lob_opts;
  lob_opts.block_size = block;
  lob_opts.threads = 2;
  lob_opts.nev = 4;
  lob_opts.tolerance = 1e-7;
  const solver::LobpcgResult br = solver::lobpcg(
      csr, csb, /*max_iterations=*/80, solver::Version::kDs, lob_opts);
  std::printf("LOBPCG   (deepsparse): lowest states:\n");
  for (std::size_t j = 0; j < br.eigenvalues.size(); ++j) {
    std::printf("  E%zu = %+.8f (residual %.1e)\n", j, br.eigenvalues[j],
                br.residual_norms[j]);
  }
  std::printf("\nLanczos/LOBPCG E0 agreement: %.2e\n",
              std::abs(lr.ritz_values.front() - br.eigenvalues.front()));
  return 0;
}
