// Execution-flow tracing (the instrument behind the paper's Figs. 10/13):
// runs task-parallel Lanczos under the flux runtime with the trace recorder
// attached, renders the flow graph in the terminal, writes it as CSV, and
// dumps the Listing-1 task graph (paper Fig. 3) as Graphviz DOT.
//
//   ./flow_trace [out-prefix]
#include <cstdio>
#include <fstream>
#include <iostream>

#include "ds/program.hpp"
#include "perf/trace.hpp"
#include "solvers/lanczos.hpp"
#include "sparse/generators.hpp"

int main(int argc, char** argv) {
  using namespace sts;
  const std::string prefix = argc > 1 ? argv[1] : "flow_trace";

  sparse::Coo coo = sparse::gen_fem3d(14, 14, 14, 1, 5);
  sparse::Csr csr = sparse::Csr::from_coo(coo);
  const la::index_t block = 256;
  sparse::Csb csb = sparse::Csb::from_coo(coo, block);

  perf::TraceRecorder trace(8);
  solver::SolverOptions options;
  options.block_size = block;
  options.threads = 2;
  options.trace = &trace;
  (void)solver::lanczos(csr, csb, 3, solver::Version::kFlux, options);

  const auto events = trace.events();
  std::printf("recorded %zu task events over 3 Lanczos iterations\n\n",
              events.size());
  const perf::FlowGraph fg = perf::build_flow_graph(events, 120);
  perf::render_flow_graph(std::cout, fg);

  const std::string csv_path = prefix + "_flow.csv";
  std::ofstream csv(csv_path);
  perf::write_flow_graph_csv(csv, fg);
  std::printf("\nflow graph CSV written to %s\n", csv_path.c_str());

  // Fig. 3 artifact: the task graph of Listing 1 (SpMM + XY + XTY) for a
  // 3-partition toy problem.
  sparse::Coo toy_coo = sparse::gen_banded_random(12, 4, 1.0, 3);
  sparse::Csb toy = sparse::Csb::from_coo(toy_coo, 4);
  la::DenseMatrix x(12, 2), y(12, 2), q(12, 2), z(2, 2), p(2, 2);
  ds::Program prog(&toy, {});
  const ds::DataId xid = prog.vec("X", &x);
  const ds::DataId yid = prog.vec("Y", &y);
  const ds::DataId qid = prog.vec("Q", &q);
  const ds::DataId zid = prog.small("Z", &z);
  const ds::DataId pid = prog.small("P", &p);
  prog.spmm(xid, yid);      // Y = A * X
  prog.xy(yid, zid, qid);   // Q = Y * Z
  prog.xty(yid, qid, pid);  // P = Y' * Q
  const graph::Tdg g = prog.build();

  const std::string dot_path = prefix + "_fig3.dot";
  std::ofstream dot(dot_path);
  dot << g.to_dot();
  std::printf("Listing-1 task graph (%zu tasks, critical path %lld) written "
              "to %s\n",
              g.task_count(),
              static_cast<long long>(g.critical_path_tasks()),
              dot_path.c_str());
  return 0;
}
