// Quickstart: generate a sparse symmetric matrix, pick a block size with
// the tuning heuristic, and compute its lowest eigenpairs with the
// HPX-style (flux) task-parallel LOBPCG solver.
//
//   ./quickstart [rows-per-side]
#include <cstdio>
#include <cstdlib>

#include "solvers/lobpcg.hpp"
#include "sparse/generators.hpp"
#include "tuning/block_select.hpp"

int main(int argc, char** argv) {
  using namespace sts;
  const la::index_t side = argc > 1 ? std::atoll(argv[1]) : 16;

  // 1. Build a problem: a 3D FEM stencil matrix (inline_1-like structure).
  sparse::Coo coo = sparse::gen_fem3d(side, side, side, 1, /*seed=*/7);
  std::printf("matrix: %lld rows, %lld nonzeros\n",
              static_cast<long long>(coo.rows()),
              static_cast<long long>(coo.nnz()));

  // 2. Choose the CSB block size with the paper's rule of thumb, then build
  //    both storage formats (CSR for the BSP baseline, CSB for tasking).
  const unsigned threads = 2;
  const la::index_t block = tune::recommended_block_size(
      solver::Version::kFlux, threads, coo.rows());
  sparse::Csr csr = sparse::Csr::from_coo(coo);
  sparse::Csb csb = sparse::Csb::from_coo(coo, block);
  std::printf("CSB block size %lld -> %lld x %lld blocks (%lld non-empty)\n",
              static_cast<long long>(block),
              static_cast<long long>(csb.block_rows()),
              static_cast<long long>(csb.block_cols()),
              static_cast<long long>(csb.nonempty_blocks()));

  // 3. Solve for the 4 lowest eigenpairs with task-parallel LOBPCG.
  solver::LobpcgOptions options;
  options.block_size = block;
  options.threads = threads;
  options.nev = 4;
  options.tolerance = 1e-8;
  const solver::LobpcgResult result =
      solver::lobpcg(csr, csb, /*max_iterations=*/60, solver::Version::kFlux,
                     options);

  std::printf("\nlowest eigenvalues (%d converged, %d iterations, %.3f s):\n",
              result.converged, result.timing.iterations,
              result.timing.total_seconds);
  for (std::size_t j = 0; j < result.eigenvalues.size(); ++j) {
    std::printf("  lambda_%zu = %+.10f   (residual %.2e)\n", j,
                result.eigenvalues[j], result.residual_norms[j]);
  }
  return 0;
}
