// Side-by-side comparison of all five execution versions on one matrix from
// the paper's suite: real wall-clock on this machine plus simulated
// makespan and cache misses on the paper's 28-core Broadwell model.
//
//   ./runtime_comparison [suite-matrix-name] [scale]
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "sim/schedsim.hpp"
#include "sim/workloads.hpp"
#include "solvers/lobpcg.hpp"
#include "sparse/suite.hpp"
#include "support/table.hpp"
#include "tuning/block_select.hpp"

int main(int argc, char** argv) {
  using namespace sts;
  const std::string name = argc > 1 ? argv[1] : "inline_1";
  const double scale = argc > 2 ? std::atof(argv[2]) : 0.15;

  const sparse::SuiteEntry& entry = sparse::suite_entry(name);
  sparse::Coo coo = entry.make(scale);
  sparse::Csr csr = sparse::Csr::from_coo(coo);
  std::printf("%s-like (%s): %lld rows, %lld nnz (paper: %lld rows)\n",
              entry.name.c_str(), sparse::to_string(entry.matrix_class),
              static_cast<long long>(coo.rows()),
              static_cast<long long>(coo.nnz()),
              static_cast<long long>(entry.paper_rows));

  support::Table table({"version", "real time (s)", "sim time BW (s)",
                        "sim L2 misses", "sim speedup vs libcsr"});

  const la::index_t block =
      tune::recommended_block_size(solver::Version::kDs, 28, coo.rows());
  sparse::Csb csb = sparse::Csb::from_coo(coo, block);
  const sim::Workload wl = sim::build_lobpcg_workload(csr, csb, 8);
  const sim::MachineModel machine = sim::MachineModel::broadwell();

  double libcsr_sim = 0.0;
  for (solver::Version v : solver::kAllVersions) {
    // Real execution on this host.
    solver::LobpcgOptions options;
    options.block_size = block;
    options.threads = 2;
    options.nev = 8;
    const auto real = solver::lobpcg(csr, csb, 3, v, options);

    // Simulated execution on the Broadwell model.
    sim::SimOptions so;
    sim::SimResult sr;
    switch (v) {
      case solver::Version::kLibCsr:
        so.policy = sim::Policy::kBsp;
        sr = sim::simulate_bsp(wl.csr_graph, *wl.csr_layout, machine, so);
        break;
      case solver::Version::kLibCsb:
        so.policy = sim::Policy::kBsp;
        sr = sim::simulate_bsp(wl.task_graph, *wl.layout, machine, so);
        break;
      case solver::Version::kDs:
        so.policy = sim::Policy::kDsTopo;
        sr = sim::simulate_task_graph(wl.task_graph, *wl.layout, machine, so);
        break;
      case solver::Version::kFlux:
        so.policy = sim::Policy::kFluxWs;
        sr = sim::simulate_task_graph(wl.task_graph, *wl.layout, machine, so);
        break;
      case solver::Version::kRgt:
        so.policy = sim::Policy::kRgtWindow;
        sr = sim::simulate_task_graph(wl.task_graph, *wl.layout, machine, so);
        break;
    }
    if (v == solver::Version::kLibCsr) libcsr_sim = sr.makespan_seconds;
    table.row()
        .add(solver::to_string(v))
        .add(real.timing.total_seconds, 3)
        .add(sr.makespan_seconds, 4)
        .add(static_cast<std::int64_t>(sr.misses.l2_misses))
        .add(libcsr_sim / sr.makespan_seconds, 2);
  }
  std::printf("\n");
  table.print(std::cout);
  return 0;
}
