// End-to-end failure containment: deterministic fault injection through the
// solvers, breakdown detection, and option validation. These tests carry the
// ctest label "faults" (run with `ctest -L faults`).
#include <gtest/gtest.h>

#include <cctype>
#include <chrono>
#include <cmath>
#include <string>
#include <vector>

#include <sstream>

#include "obs/obs.hpp"
#include "proc_util.hpp"
#include "solvers/lanczos.hpp"
#include "solvers/lobpcg.hpp"
#include "sparse/generators.hpp"
#include "support/cancel.hpp"
#include "support/error.hpp"
#include "support/fault.hpp"

namespace sts {
namespace {

using solver::SolverStatus;
using solver::Version;

/// gtest parameter names must be alphanumeric; version names carry dashes.
std::string version_name(const ::testing::TestParamInfo<Version>& info) {
  std::string name = solver::to_string(info.param);
  for (char& c : name) {
    if (std::isalnum(static_cast<unsigned char>(c)) == 0) c = '_';
  }
  return name;
}

TEST(FaultSpec, ParsesSiteAndOptions) {
  const auto s = support::fault::parse_spec("spmv_block:hit=3:kind=nan");
  EXPECT_EQ(s.site, "spmv_block");
  EXPECT_EQ(s.hit, 3u);
  EXPECT_EQ(s.kind, support::fault::Kind::kNan);

  const auto d = support::fault::parse_spec("x:kind=delay:delay_ms=7");
  EXPECT_EQ(d.kind, support::fault::Kind::kDelay);
  EXPECT_EQ(d.delay_ms, 7u);

  const auto plain = support::fault::parse_spec("flux:task");
  EXPECT_EQ(plain.site, "flux:task"); // ':' without '=' stays in the site
  EXPECT_EQ(plain.hit, 1u);
  EXPECT_EQ(plain.kind, support::fault::Kind::kThrow);
}

TEST(FaultSpec, RejectsMalformedSpecs) {
  EXPECT_THROW((void)support::fault::parse_spec(""), support::Error);
  EXPECT_THROW((void)support::fault::parse_spec("site:hit=0"),
               support::Error);
  EXPECT_THROW((void)support::fault::parse_spec("site:kind=explode"),
               support::Error);
  EXPECT_THROW((void)support::fault::parse_spec("site:prob=0"),
               support::Error);
  EXPECT_THROW((void)support::fault::parse_spec("site:prob=1.5"),
               support::Error);
  EXPECT_THROW((void)support::fault::parse_spec("site:seed=0"),
               support::Error);
  // hit and prob select contradictory firing models.
  EXPECT_THROW((void)support::fault::parse_spec("site:hit=2:prob=0.5"),
               support::Error);
}

TEST(FaultSpec, RejectsDuplicateKeysNamingTheOffendingToken) {
  try {
    (void)support::fault::parse_spec("site:hit=2:kind=nan:hit=3");
    FAIL() << "expected support::Error";
  } catch (const support::Error& e) {
    EXPECT_NE(std::string(e.what()).find("duplicate key in 'hit=3'"),
              std::string::npos)
        << e.what();
  }
  EXPECT_THROW((void)support::fault::parse_spec("site:kind=nan:kind=throw"),
               support::Error);
  EXPECT_THROW(
      (void)support::fault::parse_spec("site:prob=0.1:prob=0.2"),
      support::Error);
}

TEST(FaultSpec, ParsesProbSeedAndCrash) {
  const auto s =
      support::fault::parse_spec("journal:append:kind=crash:prob=0.25:seed=9");
  EXPECT_EQ(s.site, "journal:append");
  EXPECT_EQ(s.kind, support::fault::Kind::kCrash);
  EXPECT_DOUBLE_EQ(s.prob, 0.25);
  EXPECT_EQ(s.seed, 9u);
}

TEST(FaultRegistry, ProbabilisticFiringIsSeededAndRepeatable) {
  // Same seed -> the same visits fire, and (unlike hit=) firing does not
  // latch: the site keeps flipping its coin forever.
  constexpr int kVisits = 200;
  std::vector<int> first_run;
  for (int run = 0; run < 2; ++run) {
    support::fault::ScopedFault f("prob_site:prob=0.3:seed=42");
    std::vector<int> fired;
    for (int i = 0; i < kVisits; ++i) {
      try {
        (void)support::fault::check("prob_site");
      } catch (const support::fault::Injected&) {
        fired.push_back(i);
      }
    }
    EXPECT_GT(fired.size(), 20u); // ~60 expected at p=0.3
    EXPECT_LT(fired.size(), 120u);
    if (run == 0) {
      first_run = fired;
    } else {
      EXPECT_EQ(fired, first_run);
    }
  }
}

TEST(FaultRegistry, UnseededProbDerivesFromTheSiteName) {
  // No seed: arming the same site twice replays the same schedule; a
  // different site name gets a different one.
  auto schedule = [](const char* site, const std::string& spec) {
    support::fault::ScopedFault f(spec);
    std::vector<int> fired;
    for (int i = 0; i < 64; ++i) {
      try {
        (void)support::fault::check(site);
      } catch (const support::fault::Injected&) {
        fired.push_back(i);
      }
    }
    return fired;
  };
  const auto a1 = schedule("prob_a", "prob_a:prob=0.4");
  const auto a2 = schedule("prob_a", "prob_a:prob=0.4");
  const auto b = schedule("prob_b", "prob_b:prob=0.4");
  EXPECT_EQ(a1, a2);
  EXPECT_NE(a1, b);
}

TEST(FaultCrash, CrashKindAbortsTheProcess) {
  // End to end in a scratch process: a crash fault at the second spmv block
  // takes stsolve down with SIGABRT — no unwinding, no exit code.
  const int code =
      testutil::spawn({STSOLVE_BIN, "--suite", "inline_1", "--scale", "0.02",
                       "--solver", "lanczos", "--version", "libcsb",
                       "--iterations", "8", "--threads", "2", "--block",
                       "64"},
                      {"STS_FAULT=spmv_block:hit=2:kind=crash"},
                      "/tmp/sts-faults-test-crash.log")
          .wait();
  EXPECT_EQ(code, -SIGABRT);
}

TEST(FaultRegistry, FiresExactlyOnceAtTheArmedVisit) {
  support::fault::ScopedFault f("reg_test:hit=3");
  EXPECT_FALSE(support::fault::check("reg_test"));
  EXPECT_FALSE(support::fault::check("reg_test"));
  EXPECT_THROW(support::fault::check("reg_test"),
               support::fault::Injected);
  // Fired once: later visits pass through.
  EXPECT_FALSE(support::fault::check("reg_test"));
  EXPECT_EQ(support::fault::visits("reg_test"), 4u);
  EXPECT_FALSE(support::fault::check("other_site")); // unarmed site
  EXPECT_EQ(support::fault::visits("other_site"), 0u);
}

TEST(FaultRegistry, ClearDisarmsAndResetsCounters) {
  support::fault::arm("reg_test2:hit=1");
  EXPECT_THROW(support::fault::check("reg_test2"),
               support::fault::Injected);
  support::fault::clear();
  EXPECT_FALSE(support::fault::check("reg_test2"));
  EXPECT_EQ(support::fault::visits("reg_test2"), 0u);
}

TEST(FaultRegistry, DelayKindStallsTheCaller) {
  support::fault::ScopedFault f("reg_test3:kind=delay:delay_ms=50");
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(support::fault::check("reg_test3"));
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - t0);
  EXPECT_GE(elapsed.count(), 40);
}

struct SolverFixture {
  sparse::Coo coo;
  sparse::Csr csr;
  sparse::Csb csb;
  solver::SolverOptions options;

  SolverFixture()
      : coo(sparse::gen_fem3d(5, 5, 5, 1, 31)),
        csr(sparse::Csr::from_coo(coo)),
        csb(sparse::Csb::from_coo(coo, 32)) {
    options.block_size = 32;
    options.threads = 2;
  }
};

class LanczosFaultVersions : public ::testing::TestWithParam<Version> {};

TEST_P(LanczosFaultVersions, ThrowFaultInSpmvSurfacesAsCatchableError) {
  SolverFixture f;
  support::fault::ScopedFault inject("spmv_block:hit=4:kind=throw");
  // The injected throw escapes the runtime as one support::Error (the task
  // runtimes wrap it in TaskError naming the failing task; the BSP versions
  // surface the Injected itself) — never std::terminate, never a hang.
  EXPECT_THROW((void)solver::lanczos(f.csr, f.csb, 8, GetParam(), f.options),
               support::Error);
}

TEST_P(LanczosFaultVersions, NanFaultYieldsTruncatedNotFiniteResult) {
  SolverFixture f;
  support::fault::ScopedFault inject("spmv_block:hit=4:kind=nan");
  const auto r = solver::lanczos(f.csr, f.csb, 8, GetParam(), f.options);
  EXPECT_EQ(r.status, SolverStatus::kNotFinite);
  EXPECT_LT(r.alphas.size(), 8u); // the poisoned iteration was dropped
  for (const double v : r.ritz_values) EXPECT_TRUE(std::isfinite(v));
}

INSTANTIATE_TEST_SUITE_P(AllCsbVersions, LanczosFaultVersions,
                         ::testing::Values(Version::kLibCsb, Version::kDs,
                                           Version::kFlux, Version::kRgt),
                         version_name);

class LanczosBreakdownVersions : public ::testing::TestWithParam<Version> {};

TEST_P(LanczosBreakdownVersions, ScaledIdentityBreaksDownCleanly) {
  // A = 2I: the Krylov space collapses after one step (A q = alpha q, so
  // beta_1 ~ 0). The solver must stop with kBreakdown and return the
  // truncated — still exact — factorization instead of NaN Ritz values.
  const la::index_t n = 64;
  sparse::Coo coo(n, n);
  for (la::index_t i = 0; i < n; ++i) coo.add(i, i, 2.0);
  coo.finalize();
  const sparse::Csr csr = sparse::Csr::from_coo(coo);
  const sparse::Csb csb = sparse::Csb::from_coo(coo, 16);
  solver::SolverOptions options;
  options.block_size = 16;
  options.threads = 2;
  const auto r = solver::lanczos(csr, csb, 10, GetParam(), options);
  EXPECT_EQ(r.status, SolverStatus::kBreakdown);
  ASSERT_GE(r.ritz_values.size(), 1u);
  for (const double v : r.ritz_values) {
    ASSERT_TRUE(std::isfinite(v));
    EXPECT_NEAR(v, 2.0, 1e-10);
  }
}

INSTANTIATE_TEST_SUITE_P(AllVersions, LanczosBreakdownVersions,
                         ::testing::ValuesIn(solver::kAllVersions),
                         version_name);

TEST(FaultTelemetry, InjectedFaultAppearsAsInstantEventInTrace) {
  SolverFixture f;
  obs::enable_tracing(""); // buffer only; clears earlier events
  support::fault::ScopedFault inject("spmv_block:hit=4:kind=nan");
  const auto r = solver::lanczos(f.csr, f.csb, 8, Version::kDs, f.options);
  EXPECT_EQ(r.status, SolverStatus::kNotFinite);
  std::ostringstream os;
  obs::write_trace_json(os);
  obs::disable();
  const std::string json = os.str();
  // The fault observer emits an instant event named after the site with
  // category "fault" on the thread that tripped it.
  EXPECT_NE(json.find("\"fault:spmv_block\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"fault\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
}

TEST(LobpcgFaults, NanFaultStopsCleanlyWithStatus) {
  SolverFixture f;
  solver::LobpcgOptions options;
  options.block_size = 32;
  options.threads = 2;
  options.nev = 4;
  support::fault::ScopedFault inject("spmv_block:hit=6:kind=nan");
  const auto r = solver::lobpcg(f.csr, f.csb, 10, Version::kDs, options);
  EXPECT_NE(r.status, SolverStatus::kOk);
  EXPECT_LT(r.timing.iterations, 10);
}

TEST(OptionValidation, BadOptionsThrowInsteadOfAborting) {
  SolverFixture f;
  EXPECT_THROW((void)solver::lanczos(f.csr, f.csb, 0, Version::kLibCsb,
                                     f.options),
               support::Error);
  solver::SolverOptions bad = f.options;
  bad.threads = 0;
  EXPECT_THROW((void)solver::lanczos(f.csr, f.csb, 4, Version::kLibCsb, bad),
               support::Error);
  bad = f.options;
  bad.block_size = -1;
  EXPECT_THROW((void)solver::lanczos(f.csr, f.csb, 4, Version::kLibCsb, bad),
               support::Error);
  // CSB block size disagreeing with the options is caught up front.
  bad = f.options;
  bad.block_size = 64;
  EXPECT_THROW((void)solver::lanczos(f.csr, f.csb, 4, Version::kDs, bad),
               support::Error);

  solver::LobpcgOptions lo;
  lo.block_size = 32;
  lo.threads = 2;
  lo.nev = 0;
  EXPECT_THROW((void)solver::lobpcg(f.csr, f.csb, 4, Version::kLibCsb, lo),
               support::Error);
  lo.nev = 4;
  lo.tolerance = -1.0;
  EXPECT_THROW((void)solver::lobpcg(f.csr, f.csb, 4, Version::kLibCsb, lo),
               support::Error);
}

TEST(Timeout, DeadlineCancelsSolveAtIterationBoundary) {
  SolverFixture f;
  support::CancelToken cancel;
  f.options.cancel = &cancel;
  // Stall one spmv block long enough for the 50 ms deadline to expire; the
  // solver observes the requested token at its next iteration boundary and
  // unwinds with Cancelled instead of finishing all 8 iterations.
  support::fault::ScopedFault stall(
      "spmv_block:hit=2:kind=delay:delay_ms=400");
  support::Deadline deadline(cancel, std::chrono::milliseconds(50),
                             "unit-timeout");
  try {
    (void)solver::lanczos(f.csr, f.csb, 8, Version::kLibCsb, f.options);
    FAIL() << "expected support::Cancelled";
  } catch (const support::Cancelled& e) {
    EXPECT_EQ(e.reason(), "unit-timeout");
  }
}

TEST(Timeout, StsolveTimeoutFlagExitsFive) {
  // Same shape end to end: a delay fault stalls iteration one past the
  // 100 ms --timeout budget, and the stsolve binary reports the documented
  // timeout exit code 5 (not breakdown's 4, not bad-input's 3).
  const int code =
      testutil::spawn({STSOLVE_BIN, "--suite", "inline_1", "--scale", "0.02",
                       "--solver", "lanczos", "--version", "libcsb",
                       "--iterations", "50", "--threads", "2", "--block",
                       "64", "--timeout", "0.1"},
                      {"STS_FAULT=spmv_block:hit=2:kind=delay:delay_ms=600"},
                      "/tmp/sts-faults-test-stsolve.log")
          .wait();
  EXPECT_EQ(code, 5);
}

} // namespace
} // namespace sts
