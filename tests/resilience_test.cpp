// Crash resilience building blocks (DESIGN.md §12): checkpoint save/load
// integrity, bit-identical solver restore across runtime versions, journal
// append/replay with torn-tail recovery, and a seeded corruption fuzz over
// the replay path. These tests carry the ctest label "faults".
#include <gtest/gtest.h>

#include <unistd.h>

#include <cctype>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "solvers/checkpoint.hpp"
#include "solvers/lanczos.hpp"
#include "solvers/lobpcg.hpp"
#include "sparse/generators.hpp"
#include "support/env.hpp"
#include "support/error.hpp"
#include "support/fault.hpp"
#include "support/rng.hpp"
#include "svc/journal.hpp"
#include "svc/service.hpp"
#include "svc/wire.hpp"

namespace sts {
namespace {

using solver::SolverStatus;
using solver::Version;

std::string tmp_path(const char* tag) {
  return "/tmp/sts-resilience-" + std::string(tag) + "-" +
         std::to_string(::getpid());
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// gtest parameter names must be alphanumeric; version names carry dashes.
std::string version_name(const ::testing::TestParamInfo<Version>& info) {
  std::string name = solver::to_string(info.param);
  for (char& c : name) {
    if (std::isalnum(static_cast<unsigned char>(c)) == 0) c = '_';
  }
  return name;
}

// ---------------------------------------------------------- checkpoints --

solver::ckpt::Checkpoint sample_checkpoint() {
  solver::ckpt::Checkpoint c;
  c.kind = solver::ckpt::Kind::kLanczos;
  c.lanczos.seed = 7;
  c.lanczos.m = 3;
  c.lanczos.cols = 2;
  c.lanczos.iterations = 1;
  c.lanczos.alphas = {1.5};
  c.lanczos.betas = {0.25};
  c.lanczos.basis = {1, 2, 3, 4, 5, 6};
  c.lanczos.q = {0.5, -0.5, 0.125};
  return c;
}

TEST(Checkpoint, SaveLoadRoundTripPreservesEveryField) {
  const std::string path = tmp_path("roundtrip");
  solver::ckpt::save(sample_checkpoint(), path);
  const solver::ckpt::Checkpoint back = solver::ckpt::load(path);
  EXPECT_EQ(back.kind, solver::ckpt::Kind::kLanczos);
  EXPECT_EQ(back.lanczos.seed, 7u);
  EXPECT_EQ(back.lanczos.m, 3);
  EXPECT_EQ(back.lanczos.cols, 2);
  EXPECT_EQ(back.lanczos.iterations, 1);
  EXPECT_EQ(back.lanczos.alphas, sample_checkpoint().lanczos.alphas);
  EXPECT_EQ(back.lanczos.betas, sample_checkpoint().lanczos.betas);
  EXPECT_EQ(back.lanczos.basis, sample_checkpoint().lanczos.basis);
  EXPECT_EQ(back.lanczos.q, sample_checkpoint().lanczos.q);
  ::unlink(path.c_str());
}

TEST(Checkpoint, LoadRejectsCorruptionAndTruncation) {
  const std::string path = tmp_path("corrupt");
  solver::ckpt::save(sample_checkpoint(), path);
  const std::string good = read_file(path);
  ASSERT_GT(good.size(), 40u);

  // Missing file.
  EXPECT_THROW((void)solver::ckpt::load(path + ".nope"), support::Error);

  // One flipped payload byte: the CRC catches it.
  std::string flipped = good;
  flipped[flipped.size() - 3] ^= 0x40;
  write_file(path, flipped);
  EXPECT_THROW((void)solver::ckpt::load(path), support::Error);

  // Truncated mid-payload.
  write_file(path, good.substr(0, good.size() / 2));
  EXPECT_THROW((void)solver::ckpt::load(path), support::Error);

  // Wrong magic.
  std::string bad_magic = good;
  bad_magic[0] = 'X';
  write_file(path, bad_magic);
  EXPECT_THROW((void)solver::ckpt::load(path), support::Error);
  ::unlink(path.c_str());
}

TEST(Checkpoint, WriteFaultSiteFiresAndLeavesNoFile) {
  const std::string path = tmp_path("faulted");
  ::unlink(path.c_str());
  support::fault::ScopedFault inject("ckpt:write:hit=1:kind=throw");
  EXPECT_THROW(solver::ckpt::save(sample_checkpoint(), path),
               support::fault::Injected);
  EXPECT_THROW((void)solver::ckpt::load(path), support::Error); // no file
}

TEST(Checkpoint, EffectiveEveryPrefersRequestThenEnvThenDefault) {
  EXPECT_EQ(solver::ckpt::effective_every(3), 3);
  ::unsetenv("STS_CKPT_EVERY");
  EXPECT_EQ(solver::ckpt::effective_every(0), 10);
  ::setenv("STS_CKPT_EVERY", "4", 1);
  EXPECT_EQ(solver::ckpt::effective_every(0), 4);
  ::unsetenv("STS_CKPT_EVERY");
}

// ------------------------------------------------------ solver restore --

struct SolverFixture {
  sparse::Coo coo;
  sparse::Csr csr;
  sparse::Csb csb;

  SolverFixture()
      : coo(sparse::gen_fem3d(5, 5, 5, 1, 31)),
        csr(sparse::Csr::from_coo(coo)),
        csb(sparse::Csb::from_coo(coo, 32)) {}
};

/// Threads where each runtime's reductions are bit-reproducible: the BSP
/// kernels reduce in thread order (deterministic only at 1 thread); the
/// ds/flux/rgt versions reduce per-piece partials in a fixed order.
unsigned deterministic_threads(Version v) {
  return (v == Version::kLibCsr || v == Version::kLibCsb) ? 1u : 2u;
}

class RestoreVersions : public ::testing::TestWithParam<Version> {};

TEST_P(RestoreVersions, LanczosResumesBitIdentically) {
  SolverFixture f;
  solver::SolverOptions options;
  options.block_size = 32;
  options.threads = deterministic_threads(GetParam());

  const auto straight = solver::lanczos(f.csr, f.csb, 10, GetParam(),
                                        options);
  ASSERT_EQ(straight.status, SolverStatus::kOk);

  const std::string path = tmp_path("lanczos-restore");
  solver::SolverOptions ckpt_opts = options;
  ckpt_opts.ckpt_path = path;
  ckpt_opts.ckpt_every = 5;
  (void)solver::lanczos(f.csr, f.csb, 5, GetParam(), ckpt_opts);

  const solver::ckpt::Checkpoint c = solver::ckpt::load(path);
  ASSERT_EQ(c.lanczos.iterations, 5);
  solver::SolverOptions resume_opts = options;
  resume_opts.restore = &c;
  const auto resumed = solver::lanczos(f.csr, f.csb, 10, GetParam(),
                                       resume_opts);
  ASSERT_EQ(resumed.status, SolverStatus::kOk);

  // Bit-identical, not merely close: the resumed run must replay the exact
  // arithmetic of the uninterrupted one.
  ASSERT_EQ(resumed.alphas.size(), straight.alphas.size());
  for (std::size_t i = 0; i < straight.alphas.size(); ++i) {
    EXPECT_EQ(resumed.alphas[i], straight.alphas[i]) << "alpha " << i;
  }
  ASSERT_EQ(resumed.betas.size(), straight.betas.size());
  for (std::size_t i = 0; i < straight.betas.size(); ++i) {
    EXPECT_EQ(resumed.betas[i], straight.betas[i]) << "beta " << i;
  }
  ::unlink(path.c_str());
}

TEST_P(RestoreVersions, LobpcgResumesBitIdentically) {
  SolverFixture f;
  solver::LobpcgOptions options;
  options.block_size = 32;
  options.threads = deterministic_threads(GetParam());
  options.nev = 4;
  options.tolerance = 1e-300; // never converges: all iterations run

  const auto straight = solver::lobpcg(f.csr, f.csb, 8, GetParam(), options);
  ASSERT_EQ(straight.status, SolverStatus::kOk);

  const std::string path = tmp_path("lobpcg-restore");
  solver::LobpcgOptions ckpt_opts = options;
  ckpt_opts.ckpt_path = path;
  ckpt_opts.ckpt_every = 4;
  (void)solver::lobpcg(f.csr, f.csb, 4, GetParam(), ckpt_opts);

  const solver::ckpt::Checkpoint c = solver::ckpt::load(path);
  ASSERT_EQ(c.kind, solver::ckpt::Kind::kLobpcg);
  ASSERT_EQ(c.lobpcg.iterations, 4);
  solver::LobpcgOptions resume_opts = options;
  resume_opts.restore = &c;
  const auto resumed = solver::lobpcg(f.csr, f.csb, 8, GetParam(),
                                      resume_opts);
  ASSERT_EQ(resumed.status, SolverStatus::kOk);

  ASSERT_EQ(resumed.eigenvalues.size(), straight.eigenvalues.size());
  for (std::size_t i = 0; i < straight.eigenvalues.size(); ++i) {
    EXPECT_EQ(resumed.eigenvalues[i], straight.eigenvalues[i]) << "ev " << i;
  }
  ASSERT_EQ(resumed.residual_norms.size(), straight.residual_norms.size());
  for (std::size_t i = 0; i < straight.residual_norms.size(); ++i) {
    EXPECT_EQ(resumed.residual_norms[i], straight.residual_norms[i])
        << "norm " << i;
  }
  ::unlink(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(AllCsbVersions, RestoreVersions,
                         ::testing::Values(Version::kLibCsb, Version::kDs,
                                           Version::kFlux, Version::kRgt),
                         version_name);

TEST(Restore, MismatchedCheckpointIsRejectedUpFront) {
  SolverFixture f;
  solver::SolverOptions options;
  options.block_size = 32;
  options.threads = 1;

  const std::string path = tmp_path("mismatch");
  solver::SolverOptions ckpt_opts = options;
  ckpt_opts.ckpt_path = path;
  ckpt_opts.ckpt_every = 5;
  (void)solver::lanczos(f.csr, f.csb, 5, Version::kLibCsb, ckpt_opts);
  const solver::ckpt::Checkpoint c = solver::ckpt::load(path);

  // Different seed: the checkpointed basis does not belong to this solve.
  solver::SolverOptions wrong_seed = options;
  wrong_seed.seed = 1234;
  wrong_seed.restore = &c;
  EXPECT_THROW(
      (void)solver::lanczos(f.csr, f.csb, 10, Version::kLibCsb, wrong_seed),
      support::Error);

  // A Lanczos checkpoint cannot seed a LOBPCG solve.
  solver::LobpcgOptions lo;
  lo.block_size = 32;
  lo.threads = 1;
  lo.nev = 4;
  lo.restore = &c;
  EXPECT_THROW((void)solver::lobpcg(f.csr, f.csb, 8, Version::kLibCsb, lo),
               support::Error);
  ::unlink(path.c_str());
}

// -------------------------------------------------------------- journal --

TEST(Journal, AppendReplayRoundTrip) {
  const std::string path = tmp_path("journal-roundtrip");
  ::unlink(path.c_str());
  {
    svc::Journal j;
    j.open(path, 0);
    svc::wire::Json extra = svc::wire::Json::object();
    extra.set("spec", "payload");
    j.append("SUBMITTED", 1, extra);
    j.append("RUNNING", 1);
    j.append("DONE", 1);
  }
  const auto replay = svc::Journal::replay(path);
  EXPECT_FALSE(replay.torn_tail);
  ASSERT_EQ(replay.records.size(), 3u);
  EXPECT_EQ(replay.records[0].event, "SUBMITTED");
  EXPECT_EQ(replay.records[0].id, 1u);
  EXPECT_EQ(replay.records[0].fields.string_or("spec", ""), "payload");
  EXPECT_EQ(replay.records[2].event, "DONE");
  ::unlink(path.c_str());
}

TEST(Journal, MissingFileIsAnEmptyReplay) {
  const auto replay = svc::Journal::replay(tmp_path("journal-missing"));
  EXPECT_TRUE(replay.records.empty());
  EXPECT_FALSE(replay.torn_tail);
  EXPECT_EQ(replay.valid_bytes, 0u);
}

TEST(Journal, TornTailIsDetectedTruncatedAndHealed) {
  const std::string path = tmp_path("journal-torn");
  ::unlink(path.c_str());
  {
    svc::Journal j;
    j.open(path, 0);
    j.append("SUBMITTED", 1);
    j.append("RUNNING", 1);
    j.append("DONE", 1);
  }
  const std::string full = read_file(path);
  write_file(path, full.substr(0, full.size() - 3)); // crash mid-append

  const auto torn = svc::Journal::replay(path);
  EXPECT_TRUE(torn.torn_tail);
  ASSERT_EQ(torn.records.size(), 2u);
  EXPECT_EQ(torn.records[1].event, "RUNNING");

  // Reopening at the intact prefix drops the tail; the next append lands on
  // a record boundary and replay comes back clean.
  {
    svc::Journal j;
    j.open(path, torn.valid_bytes);
    j.append("FAILED", 1);
  }
  const auto healed = svc::Journal::replay(path);
  EXPECT_FALSE(healed.torn_tail);
  ASSERT_EQ(healed.records.size(), 3u);
  EXPECT_EQ(healed.records[2].event, "FAILED");
  ::unlink(path.c_str());
}

TEST(Journal, CorruptMiddleRecordStopsReplayAtLastIntactBoundary) {
  const std::string path = tmp_path("journal-corrupt");
  ::unlink(path.c_str());
  {
    svc::Journal j;
    j.open(path, 0);
    j.append("SUBMITTED", 1);
    j.append("RUNNING", 1);
  }
  std::string bytes = read_file(path);
  bytes[bytes.size() - 2] ^= 0x01; // flip a byte inside the second payload
  write_file(path, bytes);
  const auto replay = svc::Journal::replay(path);
  EXPECT_TRUE(replay.torn_tail);
  ASSERT_EQ(replay.records.size(), 1u);
  EXPECT_EQ(replay.records[0].event, "SUBMITTED");
  ::unlink(path.c_str());
}

TEST(Journal, AppendFaultSiteSurfacesAsInjected) {
  const std::string path = tmp_path("journal-fault");
  ::unlink(path.c_str());
  svc::Journal j;
  j.open(path, 0);
  support::fault::ScopedFault inject("journal:append:hit=1:kind=throw");
  EXPECT_THROW(j.append("SUBMITTED", 1), support::fault::Injected);
  j.append("SUBMITTED", 1); // fault fired once; the journal still works
  EXPECT_EQ(svc::Journal::replay(path).records.size(), 1u);
  ::unlink(path.c_str());
}

TEST(Journal, FuzzedCorruptionNeverCrashesReplay) {
  const std::string path = tmp_path("journal-fuzz");
  ::unlink(path.c_str());
  {
    svc::Journal j;
    j.open(path, 0);
    for (std::uint64_t id = 1; id <= 8; ++id) {
      svc::wire::Json extra = svc::wire::Json::object();
      extra.set("spec", std::string(static_cast<std::size_t>(id) * 11, 'x'));
      j.append("SUBMITTED", id, extra);
      j.append("DONE", id);
    }
  }
  const std::string pristine = read_file(path);
  ASSERT_FALSE(pristine.empty());

  const int iters =
      static_cast<int>(support::env_int("STS_JOURNAL_FUZZ_ITERS", 50));
  support::Xoshiro256 rng(2026);
  for (int i = 0; i < iters; ++i) {
    std::string bytes = pristine;
    // Random truncation, then a handful of byte flips anywhere.
    bytes.resize(rng.below(bytes.size() + 1));
    const std::uint64_t flips = rng.below(6);
    for (std::uint64_t f = 0; f < flips && !bytes.empty(); ++f) {
      bytes[rng.below(bytes.size())] ^=
          static_cast<char>(1u << rng.below(8));
    }
    write_file(path, bytes);
    const auto replay = svc::Journal::replay(path); // must not throw
    EXPECT_LE(replay.records.size(), 16u);
    EXPECT_LE(replay.valid_bytes, bytes.size());
    EXPECT_EQ(replay.torn_tail, replay.valid_bytes < bytes.size());
  }
  ::unlink(path.c_str());
}

// ----------------------------------------------- recovery x dispatcher --

TEST(Journal, SchedulingIdentitySurvivesReplay) {
  // A recovered job must re-enter the queue with its original class,
  // weight, fairness key, and quotas — they all ride in the journaled spec.
  const std::string path = tmp_path("journal-identity");
  ::unlink(path.c_str());
  {
    svc::RunSpec spec;
    spec.suite_name = "inline_1";
    spec.priority = "interactive";
    spec.weight = 7;
    spec.client_key = "tenant-a/retry-3";
    spec.max_workers = 2;
    spec.max_mem_bytes = 1 << 20;
    spec.deadline_ms = 1500;
    svc::Journal j;
    j.open(path, 0);
    svc::wire::Json extra = svc::wire::Json::object();
    extra.set("spec", spec.to_json());
    j.append("SUBMITTED", 9, extra);
  }
  const auto replay = svc::Journal::replay(path);
  ASSERT_EQ(replay.records.size(), 1u);
  const svc::RunSpec back =
      svc::RunSpec::from_json(replay.records[0].fields.get("spec"));
  EXPECT_EQ(back.priority, "interactive");
  EXPECT_EQ(back.weight, 7u);
  EXPECT_EQ(back.client_key, "tenant-a/retry-3");
  EXPECT_EQ(back.max_workers, 2u);
  EXPECT_EQ(back.max_mem_bytes, 1u << 20);
  EXPECT_EQ(back.deadline_ms, 1500);
  ::unlink(path.c_str());
}

TEST(Recovery, InteractiveJobIsReAdmittedAheadOfQueuedBatchJobs) {
  // Crash scenario: two batch jobs were queued and an interactive one was
  // RUNNING when the daemon died. On restart the single slot must pop the
  // recovered interactive job first — priority outranks journal order.
  const std::string path = tmp_path("journal-priority");
  ::unlink(path.c_str());

  svc::RunSpec batch;
  batch.suite_name = "inline_1";
  batch.scale = 0.02;
  batch.solver = svc::SolverKind::kLanczos;
  batch.version = Version::kLibCsb;
  batch.iterations = 5;
  batch.nev = 4;
  batch.block = 64;
  batch.threads = 2;

  // Unreachable tolerance: the recovered interactive job occupies the slot
  // until cancelled, so the batch jobs' PENDING state is observable without
  // racing their (fast) runs. timeout_sec backstops against test hangs.
  svc::RunSpec interactive = batch;
  interactive.solver = svc::SolverKind::kLobpcg;
  interactive.version = Version::kFlux;
  interactive.iterations = 2000000;
  interactive.tolerance = 1e-300;
  interactive.timeout_sec = 60.0;
  interactive.priority = "interactive";

  {
    svc::Journal j;
    j.open(path, 0);
    auto submitted = [&](std::uint64_t id, const svc::RunSpec& spec) {
      svc::wire::Json extra = svc::wire::Json::object();
      extra.set("spec", spec.to_json());
      j.append("SUBMITTED", id, extra);
    };
    submitted(1, batch);
    submitted(2, batch);
    submitted(3, interactive);
    j.append("RUNNING", 3); // interrupted mid-run
  }

  svc::Service::Config config;
  config.queue_capacity = 16;
  config.threads = 2;
  config.slots = 1;
  config.journal_path = path;
  svc::Service service(config);
  EXPECT_EQ(service.stats().recovered, 3u);

  bool running = false;
  for (int i = 0; i < 600 && !running; ++i) {
    const svc::JobInfo info = service.status(3);
    ASSERT_FALSE(info.terminal()) << info.error;
    running = info.state == svc::JobState::kRunning;
    if (!running) std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_TRUE(running) << "recovered interactive job never started";
  EXPECT_EQ(service.status(1).state, svc::JobState::kPending);
  EXPECT_EQ(service.status(2).state, svc::JobState::kPending);

  EXPECT_TRUE(service.cancel(3));
  using namespace std::chrono_literals;
  EXPECT_EQ(service.wait(1, 60s).state, svc::JobState::kDone);
  EXPECT_EQ(service.wait(2, 60s).state, svc::JobState::kDone);
  ::unlink(path.c_str());
}

} // namespace
} // namespace sts
