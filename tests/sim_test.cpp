#include <gtest/gtest.h>

#include "sim/cachesim.hpp"
#include "sim/layout.hpp"
#include "sim/machine.hpp"
#include "sim/schedsim.hpp"
#include "sim/workloads.hpp"
#include "sparse/generators.hpp"

namespace sts::sim {
namespace {

TEST(SetAssocCache, HitsAfterInstall) {
  SetAssocCache c(1024, 2); // 16 lines, 8 sets x 2 ways
  EXPECT_FALSE(c.access(5));
  EXPECT_TRUE(c.access(5));
}

TEST(SetAssocCache, LruEvictsOldest) {
  SetAssocCache c(128, 2); // 2 lines... 1 set x 2 ways
  ASSERT_EQ(c.sets(), 1u);
  EXPECT_FALSE(c.access(1));
  EXPECT_FALSE(c.access(2));
  EXPECT_TRUE(c.access(1));  // refresh 1
  EXPECT_FALSE(c.access(3)); // evicts 2 (LRU)
  EXPECT_TRUE(c.access(1));
  EXPECT_FALSE(c.access(2));
}

TEST(SetAssocCache, StreamingLargerThanCacheAlwaysMisses) {
  SetAssocCache c(64 * 64, 8); // 64 lines
  int misses = 0;
  for (int round = 0; round < 2; ++round) {
    for (std::uint64_t line = 0; line < 256; ++line) {
      misses += c.access(line) ? 0 : 1;
    }
  }
  EXPECT_EQ(misses, 512); // capacity misses every round
}

TEST(SetAssocCache, ResidentSetOnlyCompulsoryMisses) {
  SetAssocCache c(64 * 1024, 8); // 1024 lines
  int misses = 0;
  for (int round = 0; round < 3; ++round) {
    for (std::uint64_t line = 0; line < 256; ++line) {
      misses += c.access(line) ? 0 : 1;
    }
  }
  EXPECT_EQ(misses, 256);
}

TEST(MachineModel, TopologyHelpers) {
  const MachineModel bw = MachineModel::broadwell();
  EXPECT_EQ(bw.cores, 28u);
  EXPECT_EQ(bw.domain_of_core(0), 0u);
  EXPECT_EQ(bw.domain_of_core(27), 1u);
  EXPECT_EQ(bw.l3_groups(), 2u);
  const MachineModel ep = MachineModel::epyc7h12();
  EXPECT_EQ(ep.cores, 128u);
  EXPECT_EQ(ep.numa_domains, 8u);
  EXPECT_EQ(ep.l3_group_of_core(5), 1u);
  EXPECT_EQ(ep.l3_groups(), 32u);
}

TEST(CacheHierarchy, CountsMissesPerLevel) {
  CacheHierarchy h(MachineModel::testbox(2));
  // First touch misses everywhere.
  const double cold = h.access(0, 12345, 0, false);
  EXPECT_GE(cold, h.machine().mem_latency_cycles);
  // Immediately after: L1 hit.
  const double hot = h.access(0, 12345, 0, false);
  EXPECT_EQ(hot, h.machine().l1.latency_cycles);
  const MissCounts t = h.totals();
  EXPECT_EQ(t.accesses, 2u);
  EXPECT_EQ(t.l1_misses, 1u);
  EXPECT_EQ(t.l3_misses, 1u);
}

TEST(CacheHierarchy, SharedL3VisibleToGroupPeers) {
  MachineModel m = MachineModel::testbox(2); // both cores share L3
  CacheHierarchy h(m);
  (void)h.access(0, 777, 0, false); // core 0 installs in L1/L2/L3
  const double peer = h.access(1, 777, 0, false);
  EXPECT_EQ(peer, m.l3.latency_cycles); // L3 hit from the other core
}

TEST(CacheHierarchy, NumaPenaltiesApplied) {
  MachineModel m = MachineModel::broadwell();
  CacheHierarchy h(m);
  const double local = h.access(0, 1, 0, false);
  const double remote = h.access(0, 99999, 1, false);
  EXPECT_GT(remote, local);
  const double congested = h.access(0, 555555, 1, true);
  EXPECT_GT(congested, remote * 0.99);
}

TEST(DataLayout, AssignsDisjointPageAlignedBases) {
  std::vector<ds::GraphBuilder::DataInfo> data = {
      {"a", 1, 100}, {"b", 4, 8192}, {"c", 2, 1}};
  DataLayout layout(data);
  EXPECT_EQ(layout.base(0), 0u);
  EXPECT_EQ(layout.base(1) % 4096, 0u);
  EXPECT_GT(layout.base(2), layout.base(1));
  EXPECT_GE(layout.total_bytes(), 8192u + 4096u + 4096u);
}

TEST(DataLayout, FirstTouchHomesByPiece) {
  // Contiguous piece -> domain ranges (the placement a static-chunked
  // parallel initialization produces): pieces {0,1} on domain 0,
  // pieces {2,3} on domain 1.
  std::vector<ds::GraphBuilder::DataInfo> data = {{"v", 4, 4096}};
  DataLayout layout(data);
  EXPECT_EQ(layout.home_domain(0, 0, 2, true), 0u);
  EXPECT_EQ(layout.home_domain(0, 1024, 2, true), 0u);
  EXPECT_EQ(layout.home_domain(0, 2048, 2, true), 1u);
  EXPECT_EQ(layout.home_domain(0, 3072, 2, true), 1u);
  EXPECT_EQ(layout.home_domain(0, 2048, 2, false), 0u); // all on domain 0
}

struct SimFixture {
  sparse::Coo coo;
  sparse::Csr csr;
  sparse::Csb csb;
  Workload wl;

  SimFixture()
      : coo(sparse::gen_fem3d(8, 8, 8, 1, 77)),
        csr(sparse::Csr::from_coo(coo)),
        csb(sparse::Csb::from_coo(coo, 64)),
        wl(build_lanczos_workload(csr, csb, 11)) {}
};

TEST(Workload, LanczosGraphHasExpectedShape) {
  SimFixture f;
  EXPECT_TRUE(f.wl.task_graph.is_acyclic());
  EXPECT_GT(f.wl.task_graph.task_count(), 20u);
  // Critical path in kernel stages should be small (paper: ~5).
  EXPECT_LE(f.wl.task_graph.critical_path_tasks(), 40);
  EXPECT_GT(f.wl.csr_graph.task_count(), 0u);
  EXPECT_GT(f.wl.task_graph.total_flops(), 0.0);
}

TEST(Workload, LobpcgGraphIsLargerAndDeeper) {
  SimFixture f;
  Workload lob = build_lobpcg_workload(f.csr, f.csb, 8);
  EXPECT_TRUE(lob.task_graph.is_acyclic());
  EXPECT_GT(lob.task_graph.task_count(), f.wl.task_graph.task_count());
  EXPECT_GT(lob.task_graph.critical_path_tasks(),
            f.wl.task_graph.critical_path_tasks());
}

TEST(Workload, CsrVariantReplacesMatrixPhases) {
  // Needs a matrix big enough that one 512-row CSR chunk gathers only a
  // sparse subset of the x vector's cache lines.
  sparse::Coo coo = sparse::gen_fem3d(18, 18, 18, 1, 78);
  sparse::Csr csr = sparse::Csr::from_coo(coo);
  sparse::Csb csb = sparse::Csb::from_coo(coo, 256);
  const Workload wl = build_lanczos_workload(csr, csb, 11);
  bool has_scattered = false;
  std::size_t zero_tasks_in_spmv_phase = 0;
  for (std::size_t i = 0; i < wl.csr_graph.task_count(); ++i) {
    const auto& t = wl.csr_graph.task(static_cast<graph::TaskId>(i));
    for (const auto& a : t.accesses) {
      if (a.stride_lines > 1) has_scattered = true;
    }
    if (t.kind == graph::KernelKind::kZero) ++zero_tasks_in_spmv_phase;
  }
  EXPECT_TRUE(has_scattered);
  EXPECT_EQ(zero_tasks_in_spmv_phase, 0u); // CSR writes rows directly
}

class PolicyTest : public ::testing::TestWithParam<Policy> {};

TEST_P(PolicyTest, SimulationRespectsBasicBounds) {
  SimFixture f;
  const MachineModel m = MachineModel::testbox(4);
  SimOptions o;
  o.policy = GetParam();
  o.record_events = true;
  const SimResult r =
      GetParam() == Policy::kBsp
          ? simulate_bsp(f.wl.task_graph, *f.wl.layout, m, o)
          : simulate_task_graph(f.wl.task_graph, *f.wl.layout, m, o);
  EXPECT_GT(r.makespan_seconds, 0.0);
  EXPECT_EQ(r.tasks, f.wl.task_graph.task_count());
  EXPECT_GT(r.misses.accesses, 0u);
  EXPECT_GE(r.misses.l1_misses, r.misses.l2_misses * 0 + r.misses.l3_misses);
  EXPECT_GT(r.busy_fraction, 0.0);
  EXPECT_LE(r.busy_fraction, 1.0 + 1e-9);
  EXPECT_EQ(r.events.size(), f.wl.task_graph.task_count());
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PolicyTest,
                         ::testing::Values(Policy::kBsp, Policy::kDsTopo,
                                           Policy::kFluxWs,
                                           Policy::kRgtWindow));

TEST(ScheduleSim, DependenciesRespectedInEvents) {
  SimFixture f;
  const MachineModel m = MachineModel::testbox(4);
  SimOptions o;
  o.policy = Policy::kFluxWs;
  o.record_events = true;
  const SimResult r =
      simulate_task_graph(f.wl.task_graph, *f.wl.layout, m, o);
  std::vector<std::int64_t> end(f.wl.task_graph.task_count(), -1);
  std::vector<std::int64_t> start(f.wl.task_graph.task_count(), -1);
  for (const auto& ev : r.events) {
    start[static_cast<std::size_t>(ev.task_id)] = ev.start_ns;
    end[static_cast<std::size_t>(ev.task_id)] = ev.end_ns;
  }
  for (std::size_t u = 0; u < f.wl.task_graph.task_count(); ++u) {
    ASSERT_GE(start[u], 0);
    for (graph::TaskId v :
         f.wl.task_graph.successors(static_cast<graph::TaskId>(u))) {
      ASSERT_GE(start[static_cast<std::size_t>(v)], end[u])
          << "edge " << u << "->" << v;
    }
  }
}

TEST(ScheduleSim, MoreCoresNeverMuchSlower) {
  SimFixture f;
  SimOptions o;
  o.policy = Policy::kDsTopo;
  const SimResult two = simulate_task_graph(f.wl.task_graph, *f.wl.layout,
                                            MachineModel::testbox(2), o);
  const SimResult eight = simulate_task_graph(f.wl.task_graph, *f.wl.layout,
                                              MachineModel::testbox(8), o);
  EXPECT_LT(eight.makespan_seconds, two.makespan_seconds * 1.1);
}

TEST(ScheduleSim, RgtAnalysisPipelineSlowsFineGrains) {
  SimFixture f;
  const MachineModel m = MachineModel::testbox(8);
  SimOptions fast;
  fast.policy = Policy::kRgtWindow;
  fast.analysis_ns_per_task = 0.0;
  SimOptions slow = fast;
  slow.analysis_ns_per_task = 100000.0; // 100 us per task, serial
  const SimResult a =
      simulate_task_graph(f.wl.task_graph, *f.wl.layout, m, fast);
  const SimResult b =
      simulate_task_graph(f.wl.task_graph, *f.wl.layout, m, slow);
  EXPECT_GT(b.makespan_seconds, a.makespan_seconds * 2.0);
  EXPECT_GT(b.analysis_stall_seconds, 0.0);
}

TEST(ScheduleSim, FirstTouchHelpsOnNumaMachine) {
  SimFixture f;
  const MachineModel m = MachineModel::epyc7h12();
  SimOptions on;
  on.policy = Policy::kDsTopo;
  on.first_touch = true;
  SimOptions off = on;
  off.first_touch = false;
  const SimResult with_ft =
      simulate_task_graph(f.wl.task_graph, *f.wl.layout, m, on);
  const SimResult without_ft =
      simulate_task_graph(f.wl.task_graph, *f.wl.layout, m, off);
  EXPECT_LT(with_ft.makespan_seconds, without_ft.makespan_seconds);
}

TEST(ScheduleSim, BspBarriersCostTime) {
  SimFixture f;
  const MachineModel m = MachineModel::testbox(4);
  SimOptions cheap;
  cheap.policy = Policy::kBsp;
  cheap.barrier_overhead_ns = 0.0;
  SimOptions costly = cheap;
  costly.barrier_overhead_ns = 1e6; // 1 ms per phase
  const SimResult a = simulate_bsp(f.wl.task_graph, *f.wl.layout, m, cheap);
  const SimResult b = simulate_bsp(f.wl.task_graph, *f.wl.layout, m, costly);
  EXPECT_GT(b.makespan_seconds, a.makespan_seconds);
}

} // namespace
} // namespace sts::sim
