// Tests for the service layer: wire protocol, plan cache, job lifecycle,
// admission control, cancellation, fault containment, and the stsd /
// stsctl binaries end to end.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/obs.hpp"
#include "proc_util.hpp"
#include "support/error.hpp"
#include "support/fault.hpp"
#include "svc/cache.hpp"
#include "svc/client.hpp"
#include "svc/http.hpp"
#include "svc/journal.hpp"
#include "svc/server.hpp"
#include "svc/service.hpp"
#include "svc/wire.hpp"

namespace sts {
namespace {

using namespace std::chrono_literals;

// ---------------------------------------------------------------- wire --

TEST(WireJson, DumpParseRoundTrip) {
  svc::wire::Json obj = svc::wire::Json::object();
  obj.set("str", "hello \"quoted\" \\ \n\t");
  obj.set("int", std::int64_t{42});
  obj.set("neg", -3.5);
  obj.set("yes", true);
  obj.set("nothing", svc::wire::Json());
  svc::wire::Json arr = svc::wire::Json::array();
  arr.push(1);
  arr.push("two");
  arr.push(false);
  obj.set("arr", std::move(arr));

  const svc::wire::Json back = svc::wire::Json::parse(obj.dump());
  EXPECT_EQ(back.get("str").as_string(), "hello \"quoted\" \\ \n\t");
  EXPECT_EQ(back.get("int").as_int(), 42);
  EXPECT_DOUBLE_EQ(back.get("neg").as_number(), -3.5);
  EXPECT_TRUE(back.get("yes").as_bool());
  EXPECT_TRUE(back.get("nothing").is_null());
  EXPECT_EQ(back.get("arr").items().size(), 3u);
  EXPECT_EQ(back.get("arr").items()[1].as_string(), "two");
}

TEST(WireJson, ParseRejectsMalformedInput) {
  EXPECT_THROW(svc::wire::Json::parse("{"), svc::wire::WireError);
  EXPECT_THROW(svc::wire::Json::parse("{}extra"), svc::wire::WireError);
  EXPECT_THROW(svc::wire::Json::parse("{'single':1}"), svc::wire::WireError);
  EXPECT_THROW(svc::wire::Json::parse(""), svc::wire::WireError);
  EXPECT_THROW(svc::wire::Json::parse("nul"), svc::wire::WireError);
}

TEST(WireJson, ParseHandlesUnicodeEscapes) {
  const svc::wire::Json j = svc::wire::Json::parse(R"({"s":"aé\n"})");
  EXPECT_EQ(j.get("s").as_string(), "a\xc3\xa9\n");
}

TEST(WireFrame, TruncatedFrameThrowsNotHangs) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  // Header promises 100 payload bytes; only 5 arrive before the writer
  // dies. The reader must fail loudly, not wait forever or return garbage.
  const std::uint32_t len = 100;
  ASSERT_EQ(::send(fds[0], &len, sizeof len, 0),
            static_cast<ssize_t>(sizeof len));
  ASSERT_EQ(::send(fds[0], "hello", 5, 0), 5);
  ::close(fds[0]);
  std::string payload;
  EXPECT_THROW((void)svc::wire::read_frame(fds[1], payload),
               svc::wire::WireError);
  ::close(fds[1]);
}

TEST(WireFrame, OversizedFrameRejectedBothDirections) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  // Inbound: a header past kMaxFrameBytes is rejected before any payload
  // allocation (a hostile or corrupt peer cannot OOM the daemon).
  const std::uint32_t huge = svc::wire::kMaxFrameBytes + 1;
  ASSERT_EQ(::send(fds[0], &huge, sizeof huge, 0),
            static_cast<ssize_t>(sizeof huge));
  std::string payload;
  EXPECT_THROW((void)svc::wire::read_frame(fds[1], payload),
               svc::wire::WireError);
  // Outbound: the writer refuses to produce such a frame in the first
  // place.
  const std::string too_big(svc::wire::kMaxFrameBytes + 1, 'x');
  EXPECT_THROW(svc::wire::write_frame(fds[0], too_big),
               svc::wire::WireError);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(WireFrame, RoundTripOverSocketPair) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  svc::wire::write_frame(fds[0], R"({"op":"ping"})");
  std::string payload;
  ASSERT_TRUE(svc::wire::read_frame(fds[1], payload));
  EXPECT_EQ(payload, R"({"op":"ping"})");
  ::close(fds[0]); // EOF for the reader: clean false, not a throw
  EXPECT_FALSE(svc::wire::read_frame(fds[1], payload));
  ::close(fds[1]);
}

// ------------------------------------------------------------ run spec --

TEST(RunSpec, JsonRoundTripPreservesFields) {
  svc::RunSpec spec;
  spec.suite_name = "inline_1";
  spec.scale = 0.05;
  spec.solver = svc::SolverKind::kLanczos;
  spec.version = solver::Version::kDs;
  spec.iterations = 12;
  spec.nev = 6;
  spec.block = 48;
  spec.threads = 3;
  spec.timeout_sec = 2.5;

  const svc::RunSpec back = svc::RunSpec::from_json(spec.to_json());
  EXPECT_EQ(back.suite_name, "inline_1");
  EXPECT_DOUBLE_EQ(back.scale, 0.05);
  EXPECT_EQ(back.solver, svc::SolverKind::kLanczos);
  EXPECT_EQ(back.version, solver::Version::kDs);
  EXPECT_EQ(back.iterations, 12);
  EXPECT_EQ(back.nev, 6);
  EXPECT_EQ(back.block, 48);
  EXPECT_EQ(back.threads, 3u);
  EXPECT_DOUBLE_EQ(back.timeout_sec, 2.5);
  EXPECT_EQ(back.source_key(), spec.source_key());
  EXPECT_EQ(back.block_directive(), spec.block_directive());
}

TEST(RunSpec, CacheKeysDistinguishSourceAndBlockPolicy) {
  svc::RunSpec a;
  a.suite_name = "inline_1";
  a.block = 64;
  svc::RunSpec b = a;
  EXPECT_EQ(a.source_key(), b.source_key());
  EXPECT_EQ(a.block_directive(), "b64");
  b.block = 0;
  b.autotune = true;
  EXPECT_NE(a.block_directive(), b.block_directive());
  b.scale = 0.5;
  EXPECT_NE(a.source_key(), b.source_key());
}

TEST(RunSpec, ValidateRejectsNonsense) {
  svc::RunSpec spec; // no source
  EXPECT_THROW(spec.validate(), support::Error);
  spec.suite_name = "inline_1";
  EXPECT_NO_THROW(spec.validate());
  spec.iterations = 0;
  EXPECT_THROW(spec.validate(), support::Error);
  spec.iterations = 5;
  spec.block = 32;
  spec.autotune = true;
  EXPECT_THROW(spec.validate(), support::Error);
}

TEST(RunSpec, ConsumeArgEdgeCases) {
  svc::RunSpec spec;
  std::vector<std::string> values;
  std::size_t vi = 0;
  auto next = [&]() -> std::string { return values.at(vi++); };

  // Unknown flags are left for the caller (stsolve/stsctl own --wait etc.).
  EXPECT_FALSE(spec.consume_arg("--wait", next));
  EXPECT_FALSE(spec.consume_arg("--definitely-not-a-flag", next));

  values = {"inline_1", "lobpcg", "ds", "client-42"};
  EXPECT_TRUE(spec.consume_arg("--suite", next));
  EXPECT_TRUE(spec.consume_arg("--solver", next));
  EXPECT_TRUE(spec.consume_arg("--version", next));
  EXPECT_TRUE(spec.consume_arg("--key", next));
  EXPECT_EQ(spec.suite_name, "inline_1");
  EXPECT_EQ(spec.solver, svc::SolverKind::kLobpcg);
  EXPECT_EQ(spec.version, solver::Version::kDs);
  EXPECT_EQ(spec.client_key, "client-42");

  // Unknown enum values throw instead of silently defaulting.
  values = {"gauss-seidel"};
  vi = 0;
  EXPECT_THROW((void)spec.consume_arg("--solver", next), support::Error);
  values = {"opencl"};
  vi = 0;
  EXPECT_THROW((void)spec.consume_arg("--version", next), support::Error);
}

TEST(RunSpec, ClientKeySurvivesTheJsonRoundTrip) {
  svc::RunSpec spec;
  spec.suite_name = "inline_1";
  spec.client_key = "retry-key-1";
  const svc::RunSpec back = svc::RunSpec::from_json(spec.to_json());
  EXPECT_EQ(back.client_key, "retry-key-1");

  // Absent key stays absent (no accidental dedup of unkeyed submissions).
  svc::RunSpec unkeyed;
  unkeyed.suite_name = "inline_1";
  EXPECT_FALSE(unkeyed.to_json().has("key"));
  EXPECT_TRUE(svc::RunSpec::from_json(unkeyed.to_json()).client_key.empty());
}


// --------------------------------------------------------------- cache --

svc::Plan fake_plan(std::size_t bytes) {
  svc::Plan p;
  p.bytes = bytes;
  p.block_size = 32;
  return p;
}

TEST(PlanCache, HitsMissesAndByteBudgetEviction) {
  svc::PlanCache cache(/*budget_bytes=*/1000);
  bool hit = true;
  auto a = cache.get_or_build("A", "b32", [] { return fake_plan(600); }, &hit);
  EXPECT_FALSE(hit);
  auto a2 = cache.get_or_build("A", "b32", [] { return fake_plan(600); }, &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(a.get(), a2.get()); // same shared plan, no rebuild

  // B pushes the footprint to 1200 > 1000: the LRU victim is A. B itself is
  // never evicted even though it alone would still be over a tiny budget.
  auto b = cache.get_or_build("B", "b32", [] { return fake_plan(600); }, &hit);
  EXPECT_FALSE(hit);
  const svc::CacheStats st = cache.stats();
  EXPECT_EQ(st.hits, 1u);
  EXPECT_EQ(st.misses, 2u);
  EXPECT_EQ(st.evictions, 1u);
  EXPECT_EQ(st.entries, 1u);
  EXPECT_EQ(st.bytes, 600u);

  // A was evicted -> rebuilding it is a miss; the old shared_ptr is still
  // alive for whoever held it (a running job).
  cache.get_or_build("A", "b32", [] { return fake_plan(600); }, &hit);
  EXPECT_FALSE(hit);
  EXPECT_EQ(a->bytes, 600u);
}

TEST(PlanCache, LruOrderEvictsColdestFirst) {
  svc::PlanCache cache(/*budget_bytes=*/2000);
  bool hit = false;
  cache.get_or_build("A", "k", [] { return fake_plan(800); }, &hit);
  cache.get_or_build("B", "k", [] { return fake_plan(800); }, &hit);
  cache.get_or_build("A", "k", [] { return fake_plan(800); }, &hit); // warm A
  EXPECT_TRUE(hit);
  cache.get_or_build("C", "k", [] { return fake_plan(800); }, &hit);
  // C (2400 bytes total) evicts B, the coldest; A stays.
  cache.get_or_build("A", "k", [] { return fake_plan(800); }, &hit);
  EXPECT_TRUE(hit);
  cache.get_or_build("B", "k", [] { return fake_plan(800); }, &hit);
  EXPECT_FALSE(hit);
}

// ------------------------------------------------------------- service --

svc::RunSpec quick_spec(svc::SolverKind solver, solver::Version version) {
  svc::RunSpec spec;
  spec.suite_name = "inline_1";
  spec.scale = 0.02;
  spec.solver = solver;
  spec.version = version;
  spec.iterations = 5;
  spec.nev = 4;
  spec.block = 64;
  spec.threads = 2;
  return spec;
}

/// LOBPCG with an unreachable tolerance never converges, so the job runs
/// until cancelled (timeout_sec is a watchdog backstop against test hangs).
svc::RunSpec long_spec() {
  svc::RunSpec spec = quick_spec(svc::SolverKind::kLobpcg,
                                 solver::Version::kFlux);
  spec.iterations = 2000000;
  spec.tolerance = 1e-300;
  spec.timeout_sec = 60.0;
  return spec;
}

svc::Service::Config test_config(std::size_t queue_capacity = 16) {
  svc::Service::Config config;
  config.queue_capacity = queue_capacity;
  config.threads = 2;
  return config;
}

void wait_for_running(svc::Service& service, std::uint64_t id) {
  for (int i = 0; i < 600; ++i) {
    const svc::JobInfo info = service.status(id);
    if (info.state == svc::JobState::kRunning) return;
    ASSERT_FALSE(info.terminal()) << "job finished before it could be seen "
                                     "running: "
                                  << info.error;
    std::this_thread::sleep_for(10ms);
  }
  FAIL() << "job never entered RUNNING";
}

TEST(Service, RunsJobsAndServesRepeatsFromCache) {
  svc::Service service(test_config());
  const auto first = service.submit(
      quick_spec(svc::SolverKind::kLanczos, solver::Version::kFlux));
  ASSERT_TRUE(first.accepted);
  const svc::JobInfo cold = service.wait(first.id, 30s);
  ASSERT_EQ(cold.state, svc::JobState::kDone) << cold.error;
  EXPECT_FALSE(cold.cache_hit);
  EXPECT_GT(cold.block_size, 0);
  ASSERT_TRUE(cold.summary.is_object());
  EXPECT_EQ(cold.summary.get("iterations").as_int(), 5);

  const auto second = service.submit(
      quick_spec(svc::SolverKind::kLanczos, solver::Version::kFlux));
  ASSERT_TRUE(second.accepted);
  const svc::JobInfo warm = service.wait(second.id, 30s);
  ASSERT_EQ(warm.state, svc::JobState::kDone) << warm.error;
  EXPECT_TRUE(warm.cache_hit);

  const svc::ServiceStats stats = service.stats();
  EXPECT_EQ(stats.done, 2u);
  EXPECT_GE(stats.cache.hits, 1u); // the recorded-hit counter, asserted
  EXPECT_EQ(stats.cache.misses, 1u);
  EXPECT_EQ(stats.cache.entries, 1u);

  // Detected topology rides along in stats (and hence `stsctl stats`).
  EXPECT_GE(stats.topology.nodes, 1u);
  EXPECT_GE(stats.topology.cpus, stats.topology.nodes);
  EXPECT_GE(stats.topology.pool_threads, 1u);
  EXPECT_GE(stats.topology.pool_domains, 1u);
  EXPECT_LE(stats.topology.pool_domains, stats.topology.pool_threads);
  EXPECT_FALSE(stats.topology.affinity.empty());
  const svc::wire::Json j = svc::to_json(stats);
  ASSERT_TRUE(j.get("topology").is_object());
  EXPECT_GE(j.get("topology").get("nodes").as_int(), 1);
  EXPECT_GE(j.get("topology").get("cpus").as_int(), 1);
}

TEST(Service, EvictsPlansOverCacheBudget) {
  svc::Service::Config config = test_config();
  config.cache_bytes = 1024; // smaller than any real plan
  svc::Service service(config);
  svc::RunSpec a = quick_spec(svc::SolverKind::kLanczos,
                              solver::Version::kLibCsb);
  svc::RunSpec b = a;
  b.scale = 0.03; // different source key -> second cache entry
  ASSERT_EQ(service.wait(service.submit(a).id, 30s).state,
            svc::JobState::kDone);
  ASSERT_EQ(service.wait(service.submit(b).id, 30s).state,
            svc::JobState::kDone);
  const svc::ServiceStats stats = service.stats();
  EXPECT_GE(stats.cache.evictions, 1u);
  EXPECT_EQ(stats.cache.entries, 1u); // only the newest plan kept
}

TEST(Service, QueueFullSubmissionsRejectedImmediately) {
  svc::Service service(test_config(/*queue_capacity=*/1));
  const auto running = service.submit(long_spec());
  ASSERT_TRUE(running.accepted);
  wait_for_running(service, running.id);

  const auto queued = service.submit(
      quick_spec(svc::SolverKind::kLanczos, solver::Version::kLibCsb));
  ASSERT_TRUE(queued.accepted); // fills the single queue slot

  const auto rejected = service.submit(
      quick_spec(svc::SolverKind::kLanczos, solver::Version::kLibCsb));
  EXPECT_FALSE(rejected.accepted);
  EXPECT_EQ(rejected.error, "queue_full");
  EXPECT_GE(service.stats().rejected, 1u);

  EXPECT_TRUE(service.cancel(running.id));
  EXPECT_EQ(service.wait(running.id, 30s).state, svc::JobState::kCancelled);
  EXPECT_EQ(service.wait(queued.id, 30s).state, svc::JobState::kDone);
}

TEST(Service, CancelMovesRunningFluxJobToCancelled) {
  svc::Service service(test_config());
  const auto out = service.submit(long_spec());
  ASSERT_TRUE(out.accepted);
  wait_for_running(service, out.id);

  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_TRUE(service.cancel(out.id, "user asked"));
  const svc::JobInfo info = service.wait(out.id, 30s);
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_EQ(info.state, svc::JobState::kCancelled);
  EXPECT_EQ(info.error, "user asked");
  EXPECT_LT(elapsed, 10s); // prompt, not the 60 s watchdog backstop

  // The shared pool survived the unwound job: the next job runs clean.
  const auto next = service.submit(
      quick_spec(svc::SolverKind::kLobpcg, solver::Version::kFlux));
  ASSERT_TRUE(next.accepted);
  EXPECT_EQ(service.wait(next.id, 30s).state, svc::JobState::kDone);
  EXPECT_FALSE(service.cancel(out.id)); // already terminal
}

TEST(Service, DrainCancelsPendingAndRejectsNewWork) {
  svc::Service service(test_config());
  const auto running = service.submit(long_spec());
  ASSERT_TRUE(running.accepted);
  wait_for_running(service, running.id);
  const auto pending = service.submit(long_spec());
  ASSERT_TRUE(pending.accepted);

  std::thread drainer([&] { service.drain(); });
  // The executor is pinned by the running job, so drain's pending sweep is
  // observable before the drain itself completes.
  EXPECT_EQ(service.wait(pending.id, 10s).state, svc::JobState::kCancelled);
  EXPECT_EQ(service.status(pending.id).error, "drained");
  EXPECT_TRUE(service.cancel(running.id, "test over"));
  drainer.join();
  EXPECT_EQ(service.status(running.id).state, svc::JobState::kCancelled);

  const auto late = service.submit(
      quick_spec(svc::SolverKind::kLanczos, solver::Version::kLibCsb));
  EXPECT_FALSE(late.accepted);
  EXPECT_EQ(late.error, "draining");
}

TEST(Service, SvcJobFaultFailsExactlyOneJob) {
  svc::Service service(test_config());
  support::fault::ScopedFault inject("svc:job:hit=1:kind=throw");
  const auto poisoned = service.submit(
      quick_spec(svc::SolverKind::kLanczos, solver::Version::kLibCsb));
  ASSERT_TRUE(poisoned.accepted);
  const svc::JobInfo failed = service.wait(poisoned.id, 30s);
  EXPECT_EQ(failed.state, svc::JobState::kFailed);
  EXPECT_NE(failed.error.find("injected fault at 'svc:job'"),
            std::string::npos)
      << failed.error;

  // The daemon survives a poisoned job: the next one is untouched.
  const auto healthy = service.submit(
      quick_spec(svc::SolverKind::kLanczos, solver::Version::kLibCsb));
  ASSERT_TRUE(healthy.accepted);
  EXPECT_EQ(service.wait(healthy.id, 30s).state, svc::JobState::kDone);
  EXPECT_EQ(service.stats().failed, 1u);
}

TEST(Service, ClientKeyDeduplicatesResubmission) {
  svc::Service service(test_config());
  svc::RunSpec spec = quick_spec(svc::SolverKind::kLanczos,
                                 solver::Version::kLibCsb);
  spec.client_key = "idem-1";
  const auto first = service.submit(spec);
  ASSERT_TRUE(first.accepted);
  // The retrying client resends after a lost ack: same key, same job.
  const auto second = service.submit(spec);
  ASSERT_TRUE(second.accepted);
  EXPECT_EQ(second.id, first.id);
  EXPECT_EQ(service.wait(first.id, 30s).state, svc::JobState::kDone);

  svc::RunSpec other = spec;
  other.client_key = "idem-2";
  const auto third = service.submit(other);
  ASSERT_TRUE(third.accepted);
  EXPECT_NE(third.id, first.id);
  EXPECT_EQ(service.wait(third.id, 30s).state, svc::JobState::kDone);
}

TEST(Service, SolverBreakdownMarksJobFailed) {
  svc::Service service(test_config());
  // A NaN fault poisons the spmv output; the breakdown guard truncates the
  // run with kNotFinite, which the service reports as a FAILED job.
  support::fault::ScopedFault inject("spmv_block:hit=4:kind=nan");
  const auto out = service.submit(
      quick_spec(svc::SolverKind::kLanczos, solver::Version::kLibCsb));
  ASSERT_TRUE(out.accepted);
  const svc::JobInfo info = service.wait(out.id, 30s);
  EXPECT_EQ(info.state, svc::JobState::kFailed);
  EXPECT_NE(info.error.find("solver:"), std::string::npos) << info.error;
}

// ---------------------------------------------------------- obs gauges --

std::int64_t queue_depth_gauge() {
  return obs::gauge("svc.queue_depth").value();
}

// Regression for gauge drift: svc.queue_depth is republished (absolute,
// under the service mutex) at every queue mutation, so it must agree with
// stats().queue_depth at every quiescent point and never go negative.
TEST(Service, QueueDepthGaugeMatchesStatsThroughLifecycle) {
  svc::Service service(test_config(/*queue_capacity=*/2));
  EXPECT_EQ(queue_depth_gauge(), 0);

  const auto running = service.submit(long_spec());
  ASSERT_TRUE(running.accepted);
  wait_for_running(service, running.id);
  // The running job left the queue; the executor is now pinned, so the
  // queue is quiescent and the gauge must match exactly.
  EXPECT_EQ(queue_depth_gauge(),
            static_cast<std::int64_t>(service.stats().queue_depth));
  EXPECT_EQ(service.stats().queue_depth, 0u);

  const auto p1 = service.submit(long_spec());
  const auto p2 = service.submit(long_spec());
  ASSERT_TRUE(p1.accepted);
  ASSERT_TRUE(p2.accepted);
  EXPECT_EQ(service.stats().queue_depth, 2u);
  EXPECT_EQ(queue_depth_gauge(), 2);

  // Backpressure rejection must not touch the gauge.
  const auto rejected = service.submit(long_spec());
  EXPECT_FALSE(rejected.accepted);
  EXPECT_EQ(queue_depth_gauge(), 2);

  // Cancelling a PENDING job removes it from the queue (executor is still
  // pinned by `running`, so this is deterministic).
  EXPECT_TRUE(service.cancel(p2.id, "gauge test"));
  EXPECT_EQ(service.wait(p2.id, 30s).state, svc::JobState::kCancelled);
  EXPECT_EQ(service.stats().queue_depth, 1u);
  EXPECT_EQ(queue_depth_gauge(), 1);
  EXPECT_GE(queue_depth_gauge(), 0);

  // Run everything down; a settled service must leave the gauge at zero.
  EXPECT_TRUE(service.cancel(running.id));
  EXPECT_EQ(service.wait(running.id, 30s).state, svc::JobState::kCancelled);
  EXPECT_TRUE(service.cancel(p1.id));
  EXPECT_EQ(service.wait(p1.id, 30s).state, svc::JobState::kCancelled);
  service.drain();
  EXPECT_EQ(service.stats().queue_depth, 0u);
  EXPECT_EQ(queue_depth_gauge(), 0);
}

TEST(Service, RecoveredJobsRepublishQueueDepthGauge) {
  const std::string journal_path =
      "/tmp/sts-svc-test-gauge-journal-" + std::to_string(::getpid()) +
      ".log";
  std::remove(journal_path.c_str());
  {
    svc::Journal journal;
    journal.open(journal_path, 0);
    svc::wire::Json extra = svc::wire::Json::object();
    extra.set("spec", quick_spec(svc::SolverKind::kLanczos,
                                 solver::Version::kLibCsb)
                          .to_json());
    journal.append("SUBMITTED", 7, extra);
  }
  svc::Service::Config config = test_config();
  config.journal_path = journal_path;
  svc::Service service(config);
  EXPECT_EQ(service.stats().recovered, 1u);
  // The re-admitted job flows through the same gauge republish as a live
  // submit; once it completes the gauge settles back to the true depth.
  EXPECT_EQ(service.wait(7, 30s).state, svc::JobState::kDone);
  EXPECT_EQ(service.stats().queue_depth, 0u);
  EXPECT_EQ(queue_depth_gauge(), 0);
  std::remove(journal_path.c_str());
}

TEST(PlanCache, GaugesTrackBytesAndEntriesAbsolutely) {
  {
    svc::PlanCache cache(/*budget_bytes=*/1000);
    EXPECT_EQ(obs::gauge("svc.cache.bytes").value(), 0);
    EXPECT_EQ(obs::gauge("svc.cache.entries").value(), 0);
    bool hit = false;
    cache.get_or_build("A", "k", [] { return fake_plan(600); }, &hit);
    EXPECT_EQ(obs::gauge("svc.cache.bytes").value(), 600);
    EXPECT_EQ(obs::gauge("svc.cache.entries").value(), 1);
    // B evicts A (1200 > 1000): the gauges reflect the post-eviction state,
    // not a stale sum.
    cache.get_or_build("B", "k", [] { return fake_plan(600); }, &hit);
    EXPECT_EQ(obs::gauge("svc.cache.bytes").value(), 600);
    EXPECT_EQ(obs::gauge("svc.cache.entries").value(), 1);
  }
  // A fresh cache resets whatever the destroyed one left behind.
  svc::PlanCache fresh(/*budget_bytes=*/1000);
  EXPECT_EQ(obs::gauge("svc.cache.bytes").value(), 0);
  EXPECT_EQ(obs::gauge("svc.cache.entries").value(), 0);
}

// ------------------------------------------------------- server/client --

std::string test_socket_path(const char* tag) {
  return "/tmp/sts-svc-test-" + std::string(tag) + "-" +
         std::to_string(::getpid()) + ".sock";
}

TEST(Server, ServesFourConcurrentClientsMixedSolvers) {
  svc::Service service(test_config());
  svc::Server server(service, test_socket_path("conc"));
  server.start();

  constexpr int kClients = 4;
  const solver::Version versions[kClients] = {
      solver::Version::kLibCsb, solver::Version::kDs, solver::Version::kFlux,
      solver::Version::kRgt};
  std::atomic<int> done{0};
  std::vector<std::string> errors(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&, i] {
      try {
        svc::Client client(server.socket_path());
        const svc::SolverKind kind = (i % 2 == 0) ? svc::SolverKind::kLanczos
                                                  : svc::SolverKind::kLobpcg;
        const auto out = client.submit(quick_spec(kind, versions[i]));
        if (!out.accepted) {
          errors[i] = "rejected: " + out.error;
          return;
        }
        const svc::wire::Json job = client.result(out.id);
        if (job.string_or("state", "") != "DONE") {
          errors[i] = "state=" + job.string_or("state", "?") + " error=" +
                      job.string_or("error", "");
          return;
        }
        done.fetch_add(1);
      } catch (const std::exception& e) {
        errors[i] = e.what();
      }
    });
  }
  for (auto& t : clients) t.join();
  for (int i = 0; i < kClients; ++i) {
    EXPECT_TRUE(errors[i].empty()) << "client " << i << ": " << errors[i];
  }
  EXPECT_EQ(done.load(), kClients);

  svc::Client checker(server.socket_path());
  const svc::wire::Json stats = checker.stats();
  EXPECT_GE(stats.get("done").as_int(), kClients);
  server.stop();
}

TEST(Server, AcceptFaultDropsOneConnectionNotTheListener) {
  svc::Service service(test_config());
  svc::Server server(service, test_socket_path("accept"));
  server.start();
  support::fault::ScopedFault inject("svc:accept:hit=1:kind=throw");

  // First connection: accepted then dropped by the armed fault — the
  // client's request sees a closed channel.
  svc::Client doomed(server.socket_path());
  EXPECT_THROW((void)doomed.ping(), support::Error);

  // Second connection: the listener is alive and serves normally.
  svc::Client healthy(server.socket_path());
  EXPECT_TRUE(healthy.ping());
  server.stop();
}

TEST(Server, BadRequestsGetTypedErrorsNotDisconnects) {
  svc::Service service(test_config());
  svc::Server server(service, test_socket_path("bad"));
  server.start();
  svc::Client client(server.socket_path());

  svc::wire::Json bogus = svc::wire::Json::object();
  bogus.set("op", "frobnicate");
  svc::wire::Json reply = client.request(bogus);
  EXPECT_FALSE(reply.get("ok").as_bool());
  EXPECT_EQ(reply.string_or("kind", ""), "bad_request");

  svc::wire::Json submit = svc::wire::Json::object();
  submit.set("op", "submit");
  submit.set("spec", svc::wire::Json::object()); // no matrix source
  reply = client.request(submit);
  EXPECT_FALSE(reply.get("ok").as_bool());
  EXPECT_EQ(reply.string_or("kind", ""), "bad_request");

  EXPECT_TRUE(client.ping()); // connection still usable afterwards
  server.stop();
}

TEST(Server, MetricsOpServesPrometheusAndCsv) {
  svc::Service service(test_config());
  svc::Server server(service, test_socket_path("metrics"));
  server.start();
  svc::Client client(server.socket_path());

  // Run one job so the svc counters and the job-latency histogram exist.
  const auto out = client.submit(
      quick_spec(svc::SolverKind::kLanczos, solver::Version::kLibCsb));
  ASSERT_TRUE(out.accepted);
  ASSERT_EQ(client.result(out.id).string_or("state", ""), "DONE");

  const std::string prom = client.metrics("prom");
  EXPECT_NE(prom.find("sts_svc_jobs_submitted_total"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE sts_svc_job_ns summary"), std::string::npos);
  EXPECT_NE(prom.find("sts_svc_job_ns{quantile=\"0.95\"}"),
            std::string::npos);
  EXPECT_NE(prom.find("sts_svc_queue_depth"), std::string::npos);

  const std::string csv = client.metrics("csv");
  EXPECT_EQ(csv.rfind("name,type,value,count,min,max,p50,p95,p99", 0), 0u);
  EXPECT_NE(csv.find("svc.jobs_submitted,counter"), std::string::npos);

  // Unknown formats are a typed bad_request, not a disconnect.
  svc::wire::Json req = svc::wire::Json::object();
  req.set("op", "metrics");
  req.set("format", "xml");
  const svc::wire::Json reply = client.request(req);
  EXPECT_FALSE(reply.get("ok").as_bool());
  EXPECT_EQ(reply.string_or("kind", ""), "bad_request");
  EXPECT_TRUE(client.ping());
  server.stop();
}

TEST(Server, TraceOpReturnsPerJobChromeTrace) {
  svc::Service service(test_config());
  svc::Server server(service, test_socket_path("trace"));
  server.start();
  svc::Client client(server.socket_path());

  svc::RunSpec spec =
      quick_spec(svc::SolverKind::kLanczos, solver::Version::kFlux);
  spec.trace_id = "wire-trace-1";
  const auto out = client.submit(spec);
  ASSERT_TRUE(out.accepted);
  ASSERT_EQ(client.result(out.id).string_or("state", ""), "DONE");

  const std::string trace = client.trace_json(out.id);
  // Must be valid JSON with a non-empty traceEvents array carrying the
  // job's root span and the propagated trace id.
  const svc::wire::Json doc = svc::wire::Json::parse(trace);
  const svc::wire::Json& events = doc.get("traceEvents");
  EXPECT_FALSE(events.items().empty());
  EXPECT_NE(trace.find("job[" + std::to_string(out.id) + "]"),
            std::string::npos);
  EXPECT_NE(trace.find("wire-trace-1"), std::string::npos);

  // Unknown job ids surface as a typed error through the client.
  EXPECT_THROW((void)client.trace_json(999999), support::Error);
  server.stop();
}

// --------------------------------------------------------- http scrape --

std::string http_fetch(int port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  (void)::send(fd, request.data(), request.size(), 0);
  std::string out;
  char buf[4096];
  for (ssize_t n = 0; (n = ::recv(fd, buf, sizeof buf, 0)) > 0;) {
    out.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return out;
}

TEST(HttpMetrics, ServesPrometheusOverRawHttp) {
  obs::counter("svc.http_test_marker").add(1);
  svc::MetricsHttpServer http(/*port=*/0); // ephemeral
  http.start();
  ASSERT_GT(http.port(), 0);

  const std::string ok = http_fetch(http.port(), "GET /metrics HTTP/1.0\r\n\r\n");
  EXPECT_EQ(ok.rfind("HTTP/1.0 200", 0), 0u) << ok.substr(0, 200);
  EXPECT_NE(ok.find("text/plain; version=0.0.4; charset=utf-8"),
            std::string::npos);
  EXPECT_NE(ok.find("sts_svc_http_test_marker_total"), std::string::npos);

  const std::string index = http_fetch(http.port(), "GET / HTTP/1.0\r\n\r\n");
  EXPECT_EQ(index.rfind("HTTP/1.0 200", 0), 0u);

  const std::string missing =
      http_fetch(http.port(), "GET /nope HTTP/1.0\r\n\r\n");
  EXPECT_EQ(missing.rfind("HTTP/1.0 404", 0), 0u);

  const std::string wrong_verb =
      http_fetch(http.port(), "POST /metrics HTTP/1.0\r\n\r\n");
  EXPECT_EQ(wrong_verb.rfind("HTTP/1.0 405", 0), 0u);

  // The listener survives all of the above and still counts requests.
  EXPECT_GE(obs::counter("svc.http_requests").value(), 4u);
  http.stop();
}

// ------------------------------------------------------- stsd e2e ------

std::vector<std::string> stsd_argv(const std::string& socket_path,
                                   const std::vector<std::string>& extra) {
  std::vector<std::string> argv = {STSD_BIN, "--socket", socket_path,
                                   "--threads", "2"};
  argv.insert(argv.end(), extra.begin(), extra.end());
  return argv;
}

class StsdDaemon {
public:
  explicit StsdDaemon(const std::string& socket_path,
                      const std::vector<std::string>& extra_args = {},
                      const std::string& log_path =
                          "/tmp/sts-svc-test-stsd.log")
      : socket_path_(socket_path),
        child_(testutil::spawn(stsd_argv(socket_path, extra_args), {},
                               log_path)) {}

  ~StsdDaemon() {
    if (!reaped_) {
      child_.signal(SIGKILL);
      child_.wait();
    }
  }

  [[nodiscard]] bool wait_ready() const {
    for (int i = 0; i < 100; ++i) {
      try {
        svc::Client probe(socket_path_);
        if (probe.ping()) return true;
      } catch (const support::Error&) {
      }
      std::this_thread::sleep_for(50ms);
    }
    return false;
  }

  int terminate_and_wait() {
    child_.signal(SIGTERM);
    const int code = child_.wait();
    reaped_ = true;
    return code;
  }

  const std::string socket_path_;

private:
  testutil::ChildProcess child_;
  bool reaped_ = false;
};

TEST(StsdEndToEnd, SigtermDrainsAndExitsZero) {
  StsdDaemon daemon(test_socket_path("sigterm"));
  ASSERT_TRUE(daemon.wait_ready());
  {
    svc::Client client(daemon.socket_path_);
    const auto out = client.submit(
        quick_spec(svc::SolverKind::kLanczos, solver::Version::kFlux));
    ASSERT_TRUE(out.accepted);
    const svc::wire::Json job = client.result(out.id);
    EXPECT_EQ(job.string_or("state", ""), "DONE");
  }
  EXPECT_EQ(daemon.terminate_and_wait(), 0);
}

TEST(StsdEndToEnd, StsctlCancelMovesRunningJobToCancelled) {
  StsdDaemon daemon(test_socket_path("ctl"));
  ASSERT_TRUE(daemon.wait_ready());
  svc::Client client(daemon.socket_path_);
  const auto out = client.submit(long_spec());
  ASSERT_TRUE(out.accepted);
  for (int i = 0; i < 600; ++i) {
    if (client.status(out.id).string_or("state", "") == "RUNNING") break;
    std::this_thread::sleep_for(10ms);
  }
  ASSERT_EQ(client.status(out.id).string_or("state", ""), "RUNNING");

  const int ctl_exit =
      testutil::spawn({STSCTL_BIN, "--socket", daemon.socket_path_, "cancel",
                       std::to_string(out.id)},
                      {}, "/tmp/sts-svc-test-stsctl.log")
          .wait();
  EXPECT_EQ(ctl_exit, 0);
  const svc::wire::Json job = client.result(out.id, 30000);
  EXPECT_EQ(job.string_or("state", ""), "CANCELLED");
  EXPECT_EQ(daemon.terminate_and_wait(), 0);
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

// Live observability end to end: a daemon serving real jobs answers
// `stsctl metrics --prom` with parseable Prometheus text and
// `stsctl trace <job>` with a well-formed per-job Chrome trace carrying
// the client-chosen trace id.
TEST(StsdEndToEnd, StsctlScrapesMetricsAndFetchesAJobTrace) {
  StsdDaemon daemon(test_socket_path("obs"));
  ASSERT_TRUE(daemon.wait_ready());
  svc::Client client(daemon.socket_path_);

  svc::RunSpec spec =
      quick_spec(svc::SolverKind::kLanczos, solver::Version::kFlux);
  spec.trace_id = "e2e-trace-1";
  const auto out = client.submit(spec);
  ASSERT_TRUE(out.accepted);
  ASSERT_EQ(client.result(out.id).string_or("state", ""), "DONE");

  // stsctl metrics --prom: stdout is the exposition, verbatim.
  const std::string prom_path =
      "/tmp/sts-svc-test-metrics-" + std::to_string(::getpid()) + ".prom";
  std::remove(prom_path.c_str());
  ASSERT_EQ(testutil::spawn({STSCTL_BIN, "--socket", daemon.socket_path_,
                             "metrics", "--prom"},
                            {}, prom_path)
                .wait(),
            0);
  const std::string prom = slurp(prom_path);
  EXPECT_NE(prom.find("sts_svc_jobs_submitted_total"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE sts_svc_job_ns summary"), std::string::npos);
  // Light Prometheus parse: every sample line splits into `series value`
  // with a numeric value.
  std::istringstream lines(prom);
  std::string line;
  int samples = 0;
  while (std::getline(lines, line)) {
    if (line.empty() || line[0] == '#') continue;
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    EXPECT_NO_THROW((void)std::stod(line.substr(space + 1))) << line;
    ++samples;
  }
  EXPECT_GT(samples, 10);

  // stsctl trace <id> -o: the file is one job's Chrome trace.
  const std::string trace_path =
      "/tmp/sts-svc-test-trace-" + std::to_string(::getpid()) + ".json";
  std::remove(trace_path.c_str());
  ASSERT_EQ(testutil::spawn({STSCTL_BIN, "--socket", daemon.socket_path_,
                             "trace", std::to_string(out.id), "-o",
                             trace_path},
                            {}, "/tmp/sts-svc-test-stsctl.log")
                .wait(),
            0);
  const std::string trace = slurp(trace_path);
  const svc::wire::Json doc = svc::wire::Json::parse(trace);
  EXPECT_FALSE(doc.get("traceEvents").items().empty());
  EXPECT_NE(trace.find("job[" + std::to_string(out.id) + "]"),
            std::string::npos);
  EXPECT_NE(trace.find("e2e-trace-1"), std::string::npos);

  // Asking for a job that buffered no trace exits non-zero with a message,
  // not a crash.
  EXPECT_NE(testutil::spawn({STSCTL_BIN, "--socket", daemon.socket_path_,
                             "trace", "999999"},
                            {}, "/tmp/sts-svc-test-stsctl.log")
                .wait(),
            0);

  std::remove(prom_path.c_str());
  std::remove(trace_path.c_str());
  EXPECT_EQ(daemon.terminate_and_wait(), 0);
}

TEST(StsdEndToEnd, HttpListenerServesScrapesOnTheAdvertisedPort) {
  const std::string log_path =
      "/tmp/sts-svc-test-stsd-http-" + std::to_string(::getpid()) + ".log";
  std::remove(log_path.c_str());
  StsdDaemon daemon(test_socket_path("http"), {"--http-port", "0"},
                    log_path);
  ASSERT_TRUE(daemon.wait_ready());

  // The daemon prints the ephemeral port it bound; parse it from the log.
  int port = 0;
  for (int i = 0; i < 100 && port == 0; ++i) {
    const std::string log = slurp(log_path);
    const std::string needle = "metrics on http://127.0.0.1:";
    if (const std::size_t at = log.find(needle); at != std::string::npos) {
      port = std::atoi(log.c_str() + at + needle.size());
    } else {
      std::this_thread::sleep_for(50ms);
    }
  }
  ASSERT_GT(port, 0) << slurp(log_path);

  const std::string reply = http_fetch(port, "GET /metrics HTTP/1.0\r\n\r\n");
  EXPECT_EQ(reply.rfind("HTTP/1.0 200", 0), 0u) << reply.substr(0, 200);
  EXPECT_NE(reply.find("sts_svc_connections_total"), std::string::npos);
  EXPECT_EQ(daemon.terminate_and_wait(), 0);
  std::remove(log_path.c_str());
}

} // namespace
} // namespace sts
