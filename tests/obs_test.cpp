// Telemetry layer tests (ctest label "obs"): histogram quantile edge cases,
// concurrent counter increments (exercised under STS_SANITIZE=thread),
// string escaping, metrics CSV shape, and a full round trip — run a solver
// with tracing enabled, export the Chrome trace JSON, re-parse it, and
// check event nesting and timestamp sanity per thread track.
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/obs.hpp"
#include "solvers/lanczos.hpp"
#include "sparse/generators.hpp"
#include "support/escape.hpp"
#include "support/timer.hpp"

namespace sts {
namespace {

using solver::Version;

// ---------------------------------------------------------------------------
// A deliberately strict, minimal JSON parser — enough to round-trip what the
// trace exporter emits. Any deviation from valid JSON fails the test.
// ---------------------------------------------------------------------------

struct Json {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Json> array;
  std::map<std::string, Json> object;

  [[nodiscard]] const Json* find(const std::string& key) const {
    const auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
  }
};

class JsonParser {
public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  Json parse() {
    Json v = value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing characters");
    return v;
  }

private:
  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error("json parse error at byte " +
                             std::to_string(pos_) + ": " + why);
  }
  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\n' || s_[pos_] == '\r' ||
            s_[pos_] == '\t')) {
      ++pos_;
    }
  }
  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end");
    return s_[pos_];
  }
  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }
  Json value() {
    skip_ws();
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': {
        Json v;
        v.kind = Json::Kind::kString;
        v.string = string();
        return v;
      }
      case 't':
      case 'f': return boolean();
      case 'n': {
        literal("null");
        return Json{};
      }
      default: return number();
    }
  }
  void literal(const char* word) {
    for (const char* p = word; *p != '\0'; ++p) expect(*p);
  }
  Json boolean() {
    Json v;
    v.kind = Json::Kind::kBool;
    if (peek() == 't') {
      literal("true");
      v.boolean = true;
    } else {
      literal("false");
    }
    return v;
  }
  Json number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a number");
    Json v;
    v.kind = Json::Kind::kNumber;
    v.number = std::stod(s_.substr(start, pos_ - start));
    return v;
  }
  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= s_.size()) fail("unterminated string");
      const char c = s_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= s_.size()) fail("dangling escape");
      const char e = s_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > s_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = s_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad \\u digit");
            }
          }
          // The exporter only emits \u00XX for control bytes.
          out.push_back(static_cast<char>(code & 0xFF));
          break;
        }
        default: fail("unknown escape");
      }
    }
  }
  Json array() {
    expect('[');
    Json v;
    v.kind = Json::Kind::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }
  Json object() {
    expect('{');
    Json v;
    v.kind = Json::Kind::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      v.object[std::move(key)] = value();
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

Json export_and_parse() {
  std::ostringstream os;
  obs::write_trace_json(os);
  return JsonParser(os.str()).parse();
}

// ---------------------------------------------------------------------------
// Histogram quantile edge cases
// ---------------------------------------------------------------------------

TEST(Histogram, EmptyHistogramReportsZeros) {
  obs::Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_EQ(h.quantile(0.5), 0.0);
  EXPECT_EQ(h.quantile(0.99), 0.0);
}

TEST(Histogram, SingleSampleQuantilesLandInItsBucket) {
  obs::Histogram h;
  h.observe(700); // bucket [512, 1024)
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 700);
  EXPECT_EQ(h.max(), 700);
  for (const double p : {0.0, 0.5, 0.95, 0.99, 1.0}) {
    const double q = h.quantile(p);
    EXPECT_GE(q, 512.0) << "p=" << p;
    EXPECT_LE(q, 1024.0) << "p=" << p;
  }
}

TEST(Histogram, AllSamplesInOneBucketStayInThatBucket) {
  obs::Histogram h;
  for (int i = 0; i < 1000; ++i) h.observe(700);
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_EQ(h.sum(), 700 * 1000);
  const double p50 = h.quantile(0.50);
  const double p95 = h.quantile(0.95);
  const double p99 = h.quantile(0.99);
  EXPECT_GE(p50, 512.0);
  EXPECT_LE(p99, 1024.0);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
}

TEST(Histogram, QuantilesAreMonotoneAcrossBuckets) {
  obs::Histogram h;
  for (std::int64_t v : {1, 3, 9, 70, 700, 7000, 70000, 700000}) {
    h.observe(v);
  }
  double prev = -1.0;
  for (double p = 0.0; p <= 1.0; p += 0.05) {
    const double q = h.quantile(p);
    EXPECT_GE(q, prev) << "p=" << p;
    prev = q;
  }
  EXPECT_EQ(h.min(), 1);
  EXPECT_EQ(h.max(), 700000);
}

TEST(Histogram, TinyAndNegativeValuesFoldIntoBucketZero) {
  obs::Histogram h;
  h.observe(-5);
  h.observe(0);
  h.observe(1);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_LE(h.quantile(1.0), 2.0);
}

// ---------------------------------------------------------------------------
// Counter / gauge semantics (TSan builds check the data-race freedom)
// ---------------------------------------------------------------------------

TEST(Counter, ConcurrentIncrementsAllLand) {
  obs::Counter& c = obs::counter("obs_test.concurrent");
  const std::uint64_t before = c.value();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.add(1);
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(c.value() - before,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(Registry, SameNameYieldsSameMetric) {
  obs::Counter& a = obs::counter("obs_test.same");
  obs::Counter& b = obs::counter("obs_test.same");
  EXPECT_EQ(&a, &b);
  obs::Histogram& ha = obs::histogram("obs_test.same_h");
  obs::Histogram& hb = obs::histogram("obs_test.same_h");
  EXPECT_EQ(&ha, &hb);
}

TEST(Gauge, TracksValueAndPeakIndependently) {
  obs::Gauge& g = obs::gauge("obs_test.gauge");
  g.observe(5);
  g.observe(3);
  EXPECT_EQ(g.value(), 3);
  EXPECT_EQ(g.peak(), 5);
}

// ---------------------------------------------------------------------------
// String escaping
// ---------------------------------------------------------------------------

TEST(Escape, JsonEscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(support::json_escape("plain"), "plain");
  EXPECT_EQ(support::json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(support::json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(support::json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(support::json_escape(std::string_view("a\x01z", 3)), "a\\u0001z");
}

TEST(Escape, CsvQuotesOnlyWhenNeeded) {
  EXPECT_EQ(support::csv_field("plain"), "plain");
  EXPECT_EQ(support::csv_field("a,b"), "\"a,b\"");
  EXPECT_EQ(support::csv_field("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(support::csv_field("line\nbreak"), "\"line\nbreak\"");
}

TEST(Metrics, CsvDumpEscapesNamesAndOrdersQuantiles) {
  obs::counter("obs_test.csv,comma").add(3);
  obs::Histogram& h = obs::histogram("obs_test.csv_hist");
  for (int i = 1; i <= 100; ++i) h.observe(i * 10);
  std::ostringstream os;
  obs::write_metrics_csv(os);
  const std::string csv = os.str();
  EXPECT_NE(csv.find("name,type,value,count,min,max,p50,p95,p99"),
            std::string::npos);
  EXPECT_NE(csv.find("\"obs_test.csv,comma\",counter,3"), std::string::npos);

  // Pull the histogram row apart and check p50 <= p95 <= p99.
  std::istringstream lines(csv);
  std::string line;
  bool found = false;
  while (std::getline(lines, line)) {
    if (line.rfind("obs_test.csv_hist,", 0) != 0) continue;
    found = true;
    std::vector<std::string> fields;
    std::istringstream fs(line);
    std::string field;
    while (std::getline(fs, field, ',')) fields.push_back(field);
    ASSERT_EQ(fields.size(), 9u) << line;
    const double p50 = std::stod(fields[6]);
    const double p95 = std::stod(fields[7]);
    const double p99 = std::stod(fields[8]);
    EXPECT_LE(p50, p95);
    EXPECT_LE(p95, p99);
    EXPECT_GT(p50, 0.0);
  }
  EXPECT_TRUE(found);
}

// ---------------------------------------------------------------------------
// Trace export round trip
// ---------------------------------------------------------------------------

TEST(Trace, SpanNamesWithQuotesSurviveTheRoundTrip) {
  obs::enable_tracing("");
  const std::int64_t t0 = support::now_ns();
  obs::span("name \"quoted\" \\slash", "cat,comma", t0, t0 + 1000);
  obs::instant("fault:spmv_block", "fault");
  const Json doc = export_and_parse();
  obs::disable();

  const Json* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->kind, Json::Kind::kArray);
  bool saw_span = false;
  bool saw_instant = false;
  for (const Json& ev : events->array) {
    const Json* name = ev.find("name");
    const Json* ph = ev.find("ph");
    ASSERT_NE(name, nullptr);
    ASSERT_NE(ph, nullptr);
    if (name->string == "name \"quoted\" \\slash") {
      saw_span = true;
      EXPECT_EQ(ph->string, "X");
      EXPECT_EQ(ev.find("cat")->string, "cat,comma");
    }
    if (name->string == "fault:spmv_block") {
      saw_instant = true;
      EXPECT_EQ(ph->string, "i");
    }
  }
  EXPECT_TRUE(saw_span);
  EXPECT_TRUE(saw_instant);
}

struct ParsedTrack {
  std::vector<const Json*> spans; // ph == "X", in file order
};

/// Spans on one track must nest: sorted by start, each next span either
/// starts at/after the previous top's end (sibling) or ends at/before it
/// (child). Partial overlap is a malformed trace.
void check_nesting(const std::vector<const Json*>& spans) {
  std::vector<std::pair<double, double>> sorted;
  sorted.reserve(spans.size());
  for (const Json* ev : spans) {
    const double ts = ev->find("ts")->number;
    const double dur = ev->find("dur")->number;
    ASSERT_GE(dur, 0.0);
    sorted.emplace_back(ts, ts + dur);
  }
  std::sort(sorted.begin(), sorted.end());
  std::vector<std::pair<double, double>> stack;
  for (const auto& [begin, end] : sorted) {
    while (!stack.empty() && begin >= stack.back().second) stack.pop_back();
    if (!stack.empty()) {
      EXPECT_LE(end, stack.back().second + 1e-6)
          << "span [" << begin << ", " << end
          << ") partially overlaps an earlier span on the same track";
    }
    stack.emplace_back(begin, end);
  }
}

class TraceRoundTrip : public ::testing::TestWithParam<Version> {};

TEST_P(TraceRoundTrip, SolverRunExportsAWellFormedChromeTrace) {
  const sparse::Coo coo = sparse::gen_fem3d(5, 5, 5, 1, 31);
  const sparse::Csr csr = sparse::Csr::from_coo(coo);
  const sparse::Csb csb = sparse::Csb::from_coo(coo, 32);
  solver::SolverOptions options;
  options.block_size = 32;
  options.threads = 2;

  obs::enable_tracing(""); // buffer only; also clears earlier events
  const auto r = solver::lanczos(csr, csb, 6, GetParam(), options);
  const Json doc = export_and_parse();
  obs::disable();
  ASSERT_GE(r.timing.iterations, 1);

  ASSERT_EQ(doc.kind, Json::Kind::kObject);
  const Json* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->kind, Json::Kind::kArray);

  std::map<double, ParsedTrack> tracks;
  std::map<double, double> last_end; // per tid, event completion order
  int iter_spans = 0;
  int kernel_spans = 0;
  for (const Json& ev : events->array) {
    const Json* ph = ev.find("ph");
    ASSERT_NE(ph, nullptr);
    if (ph->string == "M") continue; // thread_name metadata
    const Json* ts = ev.find("ts");
    const Json* tid = ev.find("tid");
    ASSERT_NE(ts, nullptr);
    ASSERT_NE(tid, nullptr);
    EXPECT_GE(ts->number, 0.0); // rebased to the earliest event
    if (ph->string != "X") continue;
    const Json* dur = ev.find("dur");
    ASSERT_NE(dur, nullptr);
    tracks[tid->number].spans.push_back(&ev);
    // Events are pushed at completion: per track, end times never go back.
    const double end = ts->number + dur->number;
    const auto it = last_end.find(tid->number);
    if (it != last_end.end()) {
      EXPECT_GE(end, it->second - 1e-6);
    }
    last_end[tid->number] = end;

    const std::string& name = ev.find("name")->string;
    const std::string& cat = ev.find("cat")->string;
    if (name.rfind("iter[", 0) == 0) {
      ++iter_spans;
      EXPECT_NE(cat.find("lanczos."), std::string::npos);
    }
    if (cat == "spmv" || cat == "spmm") ++kernel_spans;
  }
  EXPECT_EQ(iter_spans, r.timing.iterations);
  EXPECT_GT(kernel_spans, 0);
  for (const auto& [tid, track] : tracks) check_nesting(track.spans);
  // The task runtimes run kernels on dedicated workers, away from the
  // driver thread's track.
  if (GetParam() == Version::kFlux || GetParam() == Version::kRgt) {
    EXPECT_GE(tracks.size(), 2u);
  }
}

INSTANTIATE_TEST_SUITE_P(AllVersions, TraceRoundTrip,
                         ::testing::ValuesIn(solver::kAllVersions),
                         [](const ::testing::TestParamInfo<Version>& info) {
                           std::string name = solver::to_string(info.param);
                           for (char& c : name) {
                             if (std::isalnum(
                                     static_cast<unsigned char>(c)) == 0) {
                               c = '_';
                             }
                           }
                           return name;
                         });

TEST(Trace, SchedulerMetricsSurfaceStealAndLatencyData) {
  const sparse::Coo coo = sparse::gen_fem3d(5, 5, 5, 1, 31);
  const sparse::Csr csr = sparse::Csr::from_coo(coo);
  const sparse::Csb csb = sparse::Csb::from_coo(coo, 32);
  solver::SolverOptions options;
  options.block_size = 32;
  options.threads = 2;

  obs::enable_metrics(""); // collect only
  (void)solver::lanczos(csr, csb, 6, Version::kFlux, options);
  std::ostringstream os;
  obs::write_metrics_csv(os);
  obs::disable();
  const std::string csv = os.str();

  // The flux run must surface the scheduler counters and the per-kernel
  // latency histograms the issue calls out.
  EXPECT_NE(csv.find("flux.steals,counter"), std::string::npos);
  EXPECT_NE(csv.find("flux.cross_domain_steals,counter"), std::string::npos);
  EXPECT_NE(csv.find("flux.queue_depth,histogram"), std::string::npos);
  EXPECT_NE(csv.find("flux.task_wait_ns,histogram"), std::string::npos);
  EXPECT_NE(csv.find("flux.task_run_ns,histogram"), std::string::npos);
  EXPECT_NE(csv.find("flux.task_ns.spmv,histogram"), std::string::npos);
  EXPECT_NE(csv.find("lanczos.flux.iterations,counter"), std::string::npos);
}

} // namespace
} // namespace sts
