// Telemetry layer tests (ctest label "obs"): histogram quantile edge cases,
// concurrent counter increments (exercised under STS_SANITIZE=thread),
// string escaping, metrics CSV shape, and a full round trip — run a solver
// with tracing enabled, export the Chrome trace JSON, re-parse it, and
// check event nesting and timestamp sanity per thread track.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdint>
#include <limits>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/expo.hpp"
#include "obs/obs.hpp"
#include "solvers/lanczos.hpp"
#include "sparse/generators.hpp"
#include "support/escape.hpp"
#include "support/timer.hpp"

namespace sts {
namespace {

using solver::Version;

// ---------------------------------------------------------------------------
// A deliberately strict, minimal JSON parser — enough to round-trip what the
// trace exporter emits. Any deviation from valid JSON fails the test.
// ---------------------------------------------------------------------------

struct Json {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Json> array;
  std::map<std::string, Json> object;

  [[nodiscard]] const Json* find(const std::string& key) const {
    const auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
  }
};

class JsonParser {
public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  Json parse() {
    Json v = value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing characters");
    return v;
  }

private:
  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error("json parse error at byte " +
                             std::to_string(pos_) + ": " + why);
  }
  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\n' || s_[pos_] == '\r' ||
            s_[pos_] == '\t')) {
      ++pos_;
    }
  }
  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end");
    return s_[pos_];
  }
  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }
  Json value() {
    skip_ws();
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': {
        Json v;
        v.kind = Json::Kind::kString;
        v.string = string();
        return v;
      }
      case 't':
      case 'f': return boolean();
      case 'n': {
        literal("null");
        return Json{};
      }
      default: return number();
    }
  }
  void literal(const char* word) {
    for (const char* p = word; *p != '\0'; ++p) expect(*p);
  }
  Json boolean() {
    Json v;
    v.kind = Json::Kind::kBool;
    if (peek() == 't') {
      literal("true");
      v.boolean = true;
    } else {
      literal("false");
    }
    return v;
  }
  Json number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a number");
    Json v;
    v.kind = Json::Kind::kNumber;
    v.number = std::stod(s_.substr(start, pos_ - start));
    return v;
  }
  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= s_.size()) fail("unterminated string");
      const char c = s_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= s_.size()) fail("dangling escape");
      const char e = s_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > s_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = s_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad \\u digit");
            }
          }
          // The exporter only emits \u00XX for control bytes.
          out.push_back(static_cast<char>(code & 0xFF));
          break;
        }
        default: fail("unknown escape");
      }
    }
  }
  Json array() {
    expect('[');
    Json v;
    v.kind = Json::Kind::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }
  Json object() {
    expect('{');
    Json v;
    v.kind = Json::Kind::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      v.object[std::move(key)] = value();
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

Json export_and_parse() {
  std::ostringstream os;
  obs::write_trace_json(os);
  return JsonParser(os.str()).parse();
}

// ---------------------------------------------------------------------------
// Histogram quantile edge cases
// ---------------------------------------------------------------------------

TEST(Histogram, EmptyHistogramReportsZeros) {
  obs::Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_EQ(h.quantile(0.5), 0.0);
  EXPECT_EQ(h.quantile(0.99), 0.0);
}

TEST(Histogram, SingleSampleQuantilesLandInItsBucket) {
  obs::Histogram h;
  h.observe(700); // bucket [512, 1024)
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 700);
  EXPECT_EQ(h.max(), 700);
  for (const double p : {0.0, 0.5, 0.95, 0.99, 1.0}) {
    const double q = h.quantile(p);
    EXPECT_GE(q, 512.0) << "p=" << p;
    EXPECT_LE(q, 1024.0) << "p=" << p;
  }
}

TEST(Histogram, AllSamplesInOneBucketStayInThatBucket) {
  obs::Histogram h;
  for (int i = 0; i < 1000; ++i) h.observe(700);
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_EQ(h.sum(), 700 * 1000);
  const double p50 = h.quantile(0.50);
  const double p95 = h.quantile(0.95);
  const double p99 = h.quantile(0.99);
  EXPECT_GE(p50, 512.0);
  EXPECT_LE(p99, 1024.0);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
}

TEST(Histogram, QuantilesAreMonotoneAcrossBuckets) {
  obs::Histogram h;
  for (std::int64_t v : {1, 3, 9, 70, 700, 7000, 70000, 700000}) {
    h.observe(v);
  }
  double prev = -1.0;
  for (double p = 0.0; p <= 1.0; p += 0.05) {
    const double q = h.quantile(p);
    EXPECT_GE(q, prev) << "p=" << p;
    prev = q;
  }
  EXPECT_EQ(h.min(), 1);
  EXPECT_EQ(h.max(), 700000);
}

TEST(Histogram, TinyAndNegativeValuesFoldIntoBucketZero) {
  obs::Histogram h;
  h.observe(-5);
  h.observe(0);
  h.observe(1);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_LE(h.quantile(1.0), 2.0);
  // Negative observes still land in the sum and min as-is.
  EXPECT_EQ(h.sum(), -4);
  EXPECT_EQ(h.min(), -5);
  EXPECT_EQ(h.max(), 1);
}

TEST(Histogram, HugeValuesSaturateTheTopBucketWithoutOverflow) {
  obs::Histogram h;
  h.observe(std::numeric_limits<std::int64_t>::max());
  h.observe(std::int64_t{1} << 62);
  h.observe(1);
  const obs::Histogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.count, 3u);
  EXPECT_EQ(s.max, std::numeric_limits<std::int64_t>::max());
  // Bucket counts must cover every observation — the giants saturate into
  // the top bucket rather than indexing out of range.
  std::uint64_t bucket_total = 0;
  for (const std::uint64_t b : s.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, 3u);
  EXPECT_GE(s.buckets.back(), 2u);
  // Quantiles stay finite and monotone even with a saturated top bucket.
  const double p50 = s.quantile(0.50);
  const double p99 = s.quantile(0.99);
  EXPECT_LE(p50, p99);
  EXPECT_GT(p99, 0.0);
}

TEST(Histogram, SnapshotIsSelfConsistent) {
  obs::Histogram h;
  for (int i = 1; i <= 100; ++i) h.observe(i);
  const obs::Histogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.count, 100u);
  EXPECT_EQ(s.sum, 5050);
  EXPECT_EQ(s.min, 1);
  EXPECT_EQ(s.max, 100);
  std::uint64_t bucket_total = 0;
  for (const std::uint64_t b : s.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, s.count);
  // A snapshot must not consume the data: the next one sees the same counts.
  const obs::Histogram::Snapshot again = h.snapshot();
  EXPECT_EQ(again.count, s.count);
  EXPECT_EQ(again.sum, s.sum);
}

TEST(Histogram, EmptySnapshotQuantilesAreZero) {
  obs::Histogram h;
  const obs::Histogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.sum, 0);
  EXPECT_EQ(s.quantile(0.5), 0.0);
  EXPECT_EQ(s.quantile(0.99), 0.0);
}

// The seed's metric dumps could race in-flight observe() calls and render a
// torn count/sum pair. The hot/cold snapshot must always be coherent:
// every snapshot taken mid-storm sees sum == value * count exactly.
TEST(Histogram, ConcurrentObserveAndSnapshotStayCoherent) {
  obs::Histogram& h = obs::histogram("obs_test.snapshot_storm");
  constexpr std::int64_t kValue = 700;
  constexpr int kWriters = 4;
  constexpr int kPerWriter = 50000;
  std::atomic<bool> go{false};
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&] {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (int i = 0; i < kPerWriter; ++i) h.observe(kValue);
    });
  }
  go.store(true, std::memory_order_release);
  // Snapshot continuously while the writers hammer. Coherence invariant:
  // the sum is exactly value*count — a torn read would break it.
  std::uint64_t last_count = 0;
  for (int round = 0; round < 200; ++round) {
    const obs::Histogram::Snapshot s = h.snapshot();
    EXPECT_EQ(s.sum, kValue * static_cast<std::int64_t>(s.count));
    std::uint64_t bucket_total = 0;
    for (const std::uint64_t b : s.buckets) bucket_total += b;
    EXPECT_EQ(bucket_total, s.count);
    EXPECT_GE(s.count, last_count); // monotone across snapshots
    last_count = s.count;
  }
  for (std::thread& w : writers) w.join();
  const obs::Histogram::Snapshot fin = h.snapshot();
  EXPECT_EQ(fin.count, static_cast<std::uint64_t>(kWriters) * kPerWriter);
  EXPECT_EQ(fin.sum, kValue * static_cast<std::int64_t>(fin.count));
}

// Same storm against the full-registry dumps (CSV and Prometheus): both
// render from one RegistrySnapshot, so rows must be internally coherent.
TEST(Registry, ConcurrentDumpsDuringObserveStormAreCoherent) {
  obs::Histogram& h = obs::histogram("obs_test.dump_storm");
  constexpr std::int64_t kValue = 48;
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    while (!stop.load(std::memory_order_acquire)) h.observe(kValue);
  });
  for (int round = 0; round < 50; ++round) {
    std::ostringstream os;
    obs::write_metrics_csv(os);
    std::istringstream lines(os.str());
    std::string line;
    while (std::getline(lines, line)) {
      if (line.rfind("obs_test.dump_storm,", 0) != 0) continue;
      std::vector<std::string> f;
      std::istringstream fs(line);
      std::string field;
      while (std::getline(fs, field, ',')) f.push_back(field);
      ASSERT_EQ(f.size(), 9u) << line;
      // value column holds the sum, count column the count.
      const std::int64_t sum = std::stoll(f[2]);
      const std::int64_t count = std::stoll(f[3]);
      EXPECT_EQ(sum, kValue * count) << line;
    }
  }
  stop.store(true, std::memory_order_release);
  writer.join();
}

// ---------------------------------------------------------------------------
// Counter / gauge semantics (TSan builds check the data-race freedom)
// ---------------------------------------------------------------------------

TEST(Counter, ConcurrentIncrementsAllLand) {
  obs::Counter& c = obs::counter("obs_test.concurrent");
  const std::uint64_t before = c.value();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.add(1);
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(c.value() - before,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(Registry, SameNameYieldsSameMetric) {
  obs::Counter& a = obs::counter("obs_test.same");
  obs::Counter& b = obs::counter("obs_test.same");
  EXPECT_EQ(&a, &b);
  obs::Histogram& ha = obs::histogram("obs_test.same_h");
  obs::Histogram& hb = obs::histogram("obs_test.same_h");
  EXPECT_EQ(&ha, &hb);
}

TEST(Gauge, TracksValueAndPeakIndependently) {
  obs::Gauge& g = obs::gauge("obs_test.gauge");
  g.observe(5);
  g.observe(3);
  EXPECT_EQ(g.value(), 3);
  EXPECT_EQ(g.peak(), 5);
}

// ---------------------------------------------------------------------------
// String escaping
// ---------------------------------------------------------------------------

TEST(Escape, JsonEscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(support::json_escape("plain"), "plain");
  EXPECT_EQ(support::json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(support::json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(support::json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(support::json_escape(std::string_view("a\x01z", 3)), "a\\u0001z");
}

TEST(Escape, CsvQuotesOnlyWhenNeeded) {
  EXPECT_EQ(support::csv_field("plain"), "plain");
  EXPECT_EQ(support::csv_field("a,b"), "\"a,b\"");
  EXPECT_EQ(support::csv_field("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(support::csv_field("line\nbreak"), "\"line\nbreak\"");
}

TEST(Metrics, CsvDumpEscapesNamesAndOrdersQuantiles) {
  obs::counter("obs_test.csv,comma").add(3);
  obs::Histogram& h = obs::histogram("obs_test.csv_hist");
  for (int i = 1; i <= 100; ++i) h.observe(i * 10);
  std::ostringstream os;
  obs::write_metrics_csv(os);
  const std::string csv = os.str();
  EXPECT_NE(csv.find("name,type,value,count,min,max,p50,p95,p99"),
            std::string::npos);
  EXPECT_NE(csv.find("\"obs_test.csv,comma\",counter,3"), std::string::npos);

  // Pull the histogram row apart and check p50 <= p95 <= p99.
  std::istringstream lines(csv);
  std::string line;
  bool found = false;
  while (std::getline(lines, line)) {
    if (line.rfind("obs_test.csv_hist,", 0) != 0) continue;
    found = true;
    std::vector<std::string> fields;
    std::istringstream fs(line);
    std::string field;
    while (std::getline(fs, field, ',')) fields.push_back(field);
    ASSERT_EQ(fields.size(), 9u) << line;
    const double p50 = std::stod(fields[6]);
    const double p95 = std::stod(fields[7]);
    const double p99 = std::stod(fields[8]);
    EXPECT_LE(p50, p95);
    EXPECT_LE(p95, p99);
    EXPECT_GT(p50, 0.0);
  }
  EXPECT_TRUE(found);
}

// ---------------------------------------------------------------------------
// Trace export round trip
// ---------------------------------------------------------------------------

TEST(Trace, SpanNamesWithQuotesSurviveTheRoundTrip) {
  obs::enable_tracing("");
  const std::int64_t t0 = support::now_ns();
  obs::span("name \"quoted\" \\slash", "cat,comma", t0, t0 + 1000);
  obs::instant("fault:spmv_block", "fault");
  const Json doc = export_and_parse();
  obs::disable();

  const Json* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->kind, Json::Kind::kArray);
  bool saw_span = false;
  bool saw_instant = false;
  for (const Json& ev : events->array) {
    const Json* name = ev.find("name");
    const Json* ph = ev.find("ph");
    ASSERT_NE(name, nullptr);
    ASSERT_NE(ph, nullptr);
    if (name->string == "name \"quoted\" \\slash") {
      saw_span = true;
      EXPECT_EQ(ph->string, "X");
      EXPECT_EQ(ev.find("cat")->string, "cat,comma");
    }
    if (name->string == "fault:spmv_block") {
      saw_instant = true;
      EXPECT_EQ(ph->string, "i");
    }
  }
  EXPECT_TRUE(saw_span);
  EXPECT_TRUE(saw_instant);
}

struct ParsedTrack {
  std::vector<const Json*> spans; // ph == "X", in file order
};

/// Spans on one track must nest: sorted by start, each next span either
/// starts at/after the previous top's end (sibling) or ends at/before it
/// (child). Partial overlap is a malformed trace.
void check_nesting(const std::vector<const Json*>& spans) {
  std::vector<std::pair<double, double>> sorted;
  sorted.reserve(spans.size());
  for (const Json* ev : spans) {
    const double ts = ev->find("ts")->number;
    const double dur = ev->find("dur")->number;
    ASSERT_GE(dur, 0.0);
    sorted.emplace_back(ts, ts + dur);
  }
  std::sort(sorted.begin(), sorted.end());
  std::vector<std::pair<double, double>> stack;
  for (const auto& [begin, end] : sorted) {
    while (!stack.empty() && begin >= stack.back().second) stack.pop_back();
    if (!stack.empty()) {
      EXPECT_LE(end, stack.back().second + 1e-6)
          << "span [" << begin << ", " << end
          << ") partially overlaps an earlier span on the same track";
    }
    stack.emplace_back(begin, end);
  }
}

class TraceRoundTrip : public ::testing::TestWithParam<Version> {};

TEST_P(TraceRoundTrip, SolverRunExportsAWellFormedChromeTrace) {
  const sparse::Coo coo = sparse::gen_fem3d(5, 5, 5, 1, 31);
  const sparse::Csr csr = sparse::Csr::from_coo(coo);
  const sparse::Csb csb = sparse::Csb::from_coo(coo, 32);
  solver::SolverOptions options;
  options.block_size = 32;
  options.threads = 2;

  obs::enable_tracing(""); // buffer only; also clears earlier events
  const auto r = solver::lanczos(csr, csb, 6, GetParam(), options);
  const Json doc = export_and_parse();
  obs::disable();
  ASSERT_GE(r.timing.iterations, 1);

  ASSERT_EQ(doc.kind, Json::Kind::kObject);
  const Json* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->kind, Json::Kind::kArray);

  std::map<double, ParsedTrack> tracks;
  std::map<double, double> last_end; // per tid, event completion order
  int iter_spans = 0;
  int kernel_spans = 0;
  for (const Json& ev : events->array) {
    const Json* ph = ev.find("ph");
    ASSERT_NE(ph, nullptr);
    if (ph->string == "M") continue; // thread_name metadata
    const Json* ts = ev.find("ts");
    const Json* tid = ev.find("tid");
    ASSERT_NE(ts, nullptr);
    ASSERT_NE(tid, nullptr);
    EXPECT_GE(ts->number, 0.0); // rebased to the earliest event
    if (ph->string != "X") continue;
    const Json* dur = ev.find("dur");
    ASSERT_NE(dur, nullptr);
    tracks[tid->number].spans.push_back(&ev);
    // Events are pushed at completion: per track, end times never go back.
    const double end = ts->number + dur->number;
    const auto it = last_end.find(tid->number);
    if (it != last_end.end()) {
      EXPECT_GE(end, it->second - 1e-6);
    }
    last_end[tid->number] = end;

    const std::string& name = ev.find("name")->string;
    const std::string& cat = ev.find("cat")->string;
    if (name.rfind("iter[", 0) == 0) {
      ++iter_spans;
      EXPECT_NE(cat.find("lanczos."), std::string::npos);
    }
    if (cat == "spmv" || cat == "spmm") ++kernel_spans;
  }
  EXPECT_EQ(iter_spans, r.timing.iterations);
  EXPECT_GT(kernel_spans, 0);
  for (const auto& [tid, track] : tracks) check_nesting(track.spans);
  // The task runtimes run kernels on dedicated workers, away from the
  // driver thread's track.
  if (GetParam() == Version::kFlux || GetParam() == Version::kRgt) {
    EXPECT_GE(tracks.size(), 2u);
  }
}

INSTANTIATE_TEST_SUITE_P(AllVersions, TraceRoundTrip,
                         ::testing::ValuesIn(solver::kAllVersions),
                         [](const ::testing::TestParamInfo<Version>& info) {
                           std::string name = solver::to_string(info.param);
                           for (char& c : name) {
                             if (std::isalnum(
                                     static_cast<unsigned char>(c)) == 0) {
                               c = '_';
                             }
                           }
                           return name;
                         });

TEST(Trace, SchedulerMetricsSurfaceStealAndLatencyData) {
  const sparse::Coo coo = sparse::gen_fem3d(5, 5, 5, 1, 31);
  const sparse::Csr csr = sparse::Csr::from_coo(coo);
  const sparse::Csb csb = sparse::Csb::from_coo(coo, 32);
  solver::SolverOptions options;
  options.block_size = 32;
  options.threads = 2;

  obs::enable_metrics(""); // collect only
  (void)solver::lanczos(csr, csb, 6, Version::kFlux, options);
  std::ostringstream os;
  obs::write_metrics_csv(os);
  obs::disable();
  const std::string csv = os.str();

  // The flux run must surface the scheduler counters and the per-kernel
  // latency histograms the issue calls out.
  EXPECT_NE(csv.find("flux.steals,counter"), std::string::npos);
  EXPECT_NE(csv.find("flux.cross_domain_steals,counter"), std::string::npos);
  EXPECT_NE(csv.find("flux.queue_depth,histogram"), std::string::npos);
  EXPECT_NE(csv.find("flux.task_wait_ns,histogram"), std::string::npos);
  EXPECT_NE(csv.find("flux.task_run_ns,histogram"), std::string::npos);
  EXPECT_NE(csv.find("flux.task_ns.spmv,histogram"), std::string::npos);
  EXPECT_NE(csv.find("lanczos.flux.iterations,counter"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Prometheus text exposition
// ---------------------------------------------------------------------------

bool valid_prom_name(const std::string& name) {
  if (name.empty()) return false;
  if (std::isalpha(static_cast<unsigned char>(name[0])) == 0 &&
      name[0] != '_') {
    return false;
  }
  return std::all_of(name.begin(), name.end(), [](char c) {
    return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
  });
}

TEST(Prometheus, NamesArePrefixedAndSanitized) {
  EXPECT_EQ(obs::prometheus_name("svc.queue_depth"), "sts_svc_queue_depth");
  EXPECT_EQ(obs::prometheus_name("flux.task_ns.spmv"),
            "sts_flux_task_ns_spmv");
  EXPECT_EQ(obs::prometheus_name("weird,name with spaces"),
            "sts_weird_name_with_spaces");
  EXPECT_TRUE(valid_prom_name(obs::prometheus_name("1leading.digit")));
}

TEST(Prometheus, ExpositionIsWellFormedAndCoversAllMetricKinds) {
  obs::counter("obs_test.prom_counter").add(7);
  obs::gauge("obs_test.prom_gauge").observe(42);
  obs::Histogram& h = obs::histogram("obs_test.prom_hist");
  for (int i = 1; i <= 100; ++i) h.observe(i * 10);

  std::ostringstream os;
  obs::write_prometheus(os);
  const std::string text = os.str();

  // Every non-comment line must be `<name>[{labels}] <value>` with a valid
  // metric name and a parseable number; every # TYPE must precede its
  // samples.
  std::istringstream lines(text);
  std::string line;
  std::map<std::string, std::string> typed; // prom name -> type
  std::map<std::string, bool> sampled;      // prom name -> sample seen
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty()) << "blank line in exposition";
    if (line[0] == '#') {
      std::istringstream ls(line);
      std::string hash, kind, name, rest;
      ls >> hash >> kind >> name;
      ASSERT_TRUE(kind == "HELP" || kind == "TYPE") << line;
      EXPECT_TRUE(valid_prom_name(name)) << line;
      if (kind == "TYPE") {
        ls >> rest;
        ASSERT_TRUE(rest == "counter" || rest == "gauge" ||
                    rest == "summary")
            << line;
        EXPECT_FALSE(sampled[name]) << "# TYPE after samples: " << line;
        typed[name] = rest;
      }
      continue;
    }
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    std::string series = line.substr(0, space);
    const std::string value = line.substr(space + 1);
    EXPECT_NO_THROW((void)std::stod(value)) << line;
    std::string labels;
    if (const std::size_t brace = series.find('{');
        brace != std::string::npos) {
      ASSERT_EQ(series.back(), '}') << line;
      labels = series.substr(brace + 1, series.size() - brace - 2);
      series.resize(brace);
    }
    EXPECT_TRUE(valid_prom_name(series)) << line;
    if (!labels.empty()) {
      EXPECT_EQ(labels.rfind("quantile=\"", 0), 0u) << line;
      EXPECT_EQ(labels.back(), '"') << line;
    }
    // Strip the data-model suffixes to find the family the TYPE names.
    std::string family = series;
    for (const char* suffix : {"_total", "_sum", "_count", "_peak"}) {
      const std::size_t n = std::string(suffix).size();
      if (family.size() > n && family.compare(family.size() - n, n, suffix) == 0) {
        family.resize(family.size() - n);
        break;
      }
    }
    if (typed.count(family) != 0) sampled[family] = true;
    if (typed.count(series) != 0) sampled[series] = true;
  }

  EXPECT_EQ(typed["sts_obs_test_prom_counter"], "counter");
  EXPECT_EQ(typed["sts_obs_test_prom_gauge"], "gauge");
  EXPECT_EQ(typed["sts_obs_test_prom_hist"], "summary");
  EXPECT_NE(text.find("sts_obs_test_prom_counter_total 7"),
            std::string::npos);
  EXPECT_NE(text.find("sts_obs_test_prom_gauge 42"), std::string::npos);
  EXPECT_NE(text.find("sts_obs_test_prom_hist{quantile=\"0.5\"}"),
            std::string::npos);
  EXPECT_NE(text.find("sts_obs_test_prom_hist{quantile=\"0.99\"}"),
            std::string::npos);
  EXPECT_NE(text.find("sts_obs_test_prom_hist_count 100"),
            std::string::npos);
  // The HELP line preserves the dotted registry name for greppability.
  EXPECT_NE(text.find("obs_test.prom_hist"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Sampling profiler + hardware counters
// ---------------------------------------------------------------------------

TEST(Profiler, TaskMarksShowUpInFoldedOutput) {
  obs::prof::reset_samples();
  obs::prof::start_sampling(2000.0);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  // Keep a spmv mark live until the sampler has demonstrably swept it.
  while (obs::prof::sample_count() < 5 &&
         std::chrono::steady_clock::now() < deadline) {
    const obs::prof::TaskMark mark("flux", graph::KernelKind::kSpMV);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  obs::prof::stop_sampling();
  EXPECT_FALSE(obs::prof::sampling_active());
  ASSERT_GE(obs::prof::sample_count(), 5u);

  std::ostringstream os;
  obs::prof::write_folded(os);
  const std::string folded = os.str();
  EXPECT_NE(folded.find("flux;spmv "), std::string::npos) << folded;
  // Every line is `stack count` with a positive integer count.
  std::istringstream lines(folded);
  std::string line;
  while (std::getline(lines, line)) {
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    EXPECT_GT(std::stoull(line.substr(space + 1)), 0u) << line;
    EXPECT_NE(line.find(';'), std::string::npos) << line;
  }
  obs::prof::reset_samples();
  EXPECT_EQ(obs::prof::sample_count(), 0u);
}

TEST(Profiler, NestedMarksRestoreTheOuterState) {
  obs::prof::reset_samples();
  obs::prof::start_sampling(2000.0);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (obs::prof::sample_count() < 5 &&
         std::chrono::steady_clock::now() < deadline) {
    const obs::prof::TaskMark outer("rgt", graph::KernelKind::kSpMM);
    {
      const obs::prof::TaskMark inner("rgt", graph::KernelKind::kReduce);
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  obs::prof::stop_sampling();
  std::ostringstream os;
  obs::prof::write_folded(os);
  const std::string folded = os.str();
  // Both frames appear; the inner mark didn't wipe the outer runtime.
  EXPECT_NE(folded.find("rgt;"), std::string::npos) << folded;
  obs::prof::reset_samples();
}

TEST(Profiler, HwCountersDegradeGracefully) {
  // Whatever the kernel allows (perf_event_paranoid, seccomp, no PMU),
  // these calls must never throw and -1 must propagate through deltas.
  const bool available = obs::prof::hw_counters_available();
  const obs::prof::HwCounts a = obs::prof::hw_read();
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + static_cast<double>(i);
  const obs::prof::HwCounts b = obs::prof::hw_read();
  const obs::prof::HwCounts d = obs::prof::hw_delta(b, a);
  if (available) {
    EXPECT_TRUE(b.any());
    if (a.cycles >= 0 && b.cycles >= 0) {
      EXPECT_GE(d.cycles, 0);
    }
    if (a.instructions >= 0 && b.instructions >= 0) {
      EXPECT_GT(d.instructions, 0);
    }
  } else {
    EXPECT_EQ(a.cycles, -1);
    EXPECT_EQ(d.cycles, -1);
    EXPECT_FALSE(d.any());
  }
  // Missing on either side stays missing in the delta.
  obs::prof::HwCounts missing;
  const obs::prof::HwCounts dm = obs::prof::hw_delta(b, missing);
  EXPECT_EQ(dm.cycles, -1);
  EXPECT_EQ(dm.instructions, -1);
  EXPECT_EQ(dm.cache_misses, -1);
}

// ---------------------------------------------------------------------------
// Per-job trace ring
// ---------------------------------------------------------------------------

TEST(JobTrace, CapturesEventsForTheActiveJobOnly) {
  obs::set_job_trace_capacity(std::size_t{1} << 20);
  const std::int64_t t0 = support::now_ns();

  obs::begin_job_trace(101, "trace-aaa");
  EXPECT_TRUE(obs::job_trace_active());
  obs::span("job101:work", "svc", t0, t0 + 5000);
  obs::instant("job101:mark", "svc");
  obs::end_job_trace();
  EXPECT_FALSE(obs::job_trace_active());

  // Events emitted outside any capture window belong to no job.
  obs::span("orphan:work", "svc", t0, t0 + 1000);

  obs::begin_job_trace(102, "trace-bbb");
  obs::span("job102:work", "svc", t0, t0 + 3000);
  obs::end_job_trace();

  std::ostringstream os;
  ASSERT_TRUE(obs::write_job_trace_json(101, os));
  const Json doc = JsonParser(os.str()).parse();
  const Json* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->kind, Json::Kind::kArray);
  bool saw_work = false;
  bool saw_mark = false;
  bool saw_trace_id = false;
  for (const Json& ev : events->array) {
    const std::string& name = ev.find("name")->string;
    EXPECT_EQ(name.find("job102"), std::string::npos) << "cross-job leak";
    EXPECT_EQ(name.find("orphan"), std::string::npos) << "orphan leak";
    if (name == "job101:work") saw_work = true;
    if (name == "job101:mark") saw_mark = true;
    if (name == "process_name" &&
        ev.find("args")->find("name")->string.find("trace-aaa") !=
            std::string::npos) {
      saw_trace_id = true;
    }
  }
  EXPECT_TRUE(saw_work);
  EXPECT_TRUE(saw_mark);
  EXPECT_TRUE(saw_trace_id);

  std::ostringstream os2;
  EXPECT_TRUE(obs::write_job_trace_json(102, os2));
  std::ostringstream os3;
  EXPECT_FALSE(obs::write_job_trace_json(9999, os3)) << "unknown job";
}

TEST(JobTrace, ByteBudgetEvictsOldestJobsFirst) {
  // A budget big enough for one job's events but not two: job 2 must push
  // job 1 out entirely.
  obs::set_job_trace_capacity(8 * 1024);
  const std::int64_t t0 = support::now_ns();
  for (std::uint64_t job = 201; job <= 202; ++job) {
    obs::begin_job_trace(job, "t" + std::to_string(job));
    for (int i = 0; i < 100; ++i) {
      obs::span("ev" + std::to_string(i), "svc", t0 + i * 10, t0 + i * 10 + 5);
    }
    obs::end_job_trace();
  }
  std::ostringstream evicted;
  EXPECT_FALSE(obs::write_job_trace_json(201, evicted));
  std::ostringstream kept;
  ASSERT_TRUE(obs::write_job_trace_json(202, kept));
  EXPECT_NO_THROW((void)JsonParser(kept.str()).parse());
  obs::set_job_trace_capacity(std::size_t{4} << 20); // restore default
}

TEST(JobTrace, ZeroCapacityDisablesCapture) {
  obs::set_job_trace_capacity(0);
  obs::begin_job_trace(301, "nope");
  EXPECT_FALSE(obs::job_trace_active());
  obs::span("q", "svc", 0, 100);
  obs::end_job_trace();
  std::ostringstream os;
  EXPECT_FALSE(obs::write_job_trace_json(301, os));
  obs::set_job_trace_capacity(std::size_t{4} << 20);
}

} // namespace
} // namespace sts
