// fork/exec helpers for tests that drive the real binaries (stsd, stsctl,
// stsolve) end to end: spawn with extra environment entries, send signals,
// reap the exit code.
#pragma once

#include <fcntl.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdlib>
#include <string>
#include <vector>

namespace sts::testutil {

struct ChildProcess {
  pid_t pid = -1;

  /// Blocks until the child exits; returns its exit code, or -<signal>
  /// when it was killed.
  int wait() const {
    int status = 0;
    if (::waitpid(pid, &status, 0) < 0) return -1;
    if (WIFEXITED(status)) return WEXITSTATUS(status);
    if (WIFSIGNALED(status)) return -WTERMSIG(status);
    return -1;
  }

  void signal(int sig) const { ::kill(pid, sig); }
};

/// Spawns argv[0] with the given arguments, extra "KEY=VALUE" environment
/// entries layered over the parent's, and stdout/stderr redirected to
/// `output_path` (append).
inline ChildProcess spawn(const std::vector<std::string>& argv,
                          const std::vector<std::string>& env = {},
                          const std::string& output_path = "/dev/null") {
  ChildProcess child;
  child.pid = ::fork();
  if (child.pid != 0) return child; // parent (or fork failure: pid == -1)

  for (const std::string& kv : env) {
    const std::size_t eq = kv.find('=');
    if (eq != std::string::npos) {
      ::setenv(kv.substr(0, eq).c_str(), kv.substr(eq + 1).c_str(), 1);
    }
  }
  const int fd = ::open(output_path.c_str(), O_WRONLY | O_CREAT | O_APPEND,
                        0644);
  if (fd >= 0) {
    ::dup2(fd, STDOUT_FILENO);
    ::dup2(fd, STDERR_FILENO);
    ::close(fd);
  }
  std::vector<char*> cargv;
  cargv.reserve(argv.size() + 1);
  for (const std::string& a : argv) {
    cargv.push_back(const_cast<char*>(a.c_str()));
  }
  cargv.push_back(nullptr);
  ::execv(cargv[0], cargv.data());
  ::_exit(127); // exec failed
}

} // namespace sts::testutil
