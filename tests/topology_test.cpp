// Topology detection (support/topology), scheduler placement over it, and
// the CSB domain partition / first-touch placement machinery (DESIGN.md §14).
//
// Sysfs parsing is tested against canned fixture trees written under /tmp
// and handed to detect() as the sys root — the same injection STS_SYS_ROOT
// gives the daemon — so the tests describe 2-node EPYC-like shapes even in
// a 1-CPU container.
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "flux/scheduler.hpp"
#include "solvers/common.hpp"
#include "sparse/csb.hpp"
#include "support/error.hpp"
#include "support/topology.hpp"

namespace sts {
namespace {

using support::topo::Machine;
using support::topo::parse_cpulist;

// ---------------------------------------------------------------- fixtures

/// Canned sysfs tree rooted at a fresh /tmp directory; removed on scope
/// exit. write("devices/system/cpu/online", "0-3") style.
class SysFixture {
public:
  SysFixture() {
    char tmpl[] = "/tmp/sts-topo-XXXXXX";
    root_ = ::mkdtemp(tmpl);
    EXPECT_FALSE(root_.empty());
  }
  ~SysFixture() {
    // Best-effort recursive cleanup; fixture trees are tiny and flat.
    for (auto it = files_.rbegin(); it != files_.rend(); ++it) {
      ::unlink(it->c_str());
    }
    for (auto it = dirs_.rbegin(); it != dirs_.rend(); ++it) {
      ::rmdir(it->c_str());
    }
    ::rmdir(root_.c_str());
  }

  [[nodiscard]] const std::string& root() const { return root_; }

  void write(const std::string& rel, const std::string& contents) {
    std::string dir = root_;
    std::size_t pos = 0;
    while (true) {
      const std::size_t slash = rel.find('/', pos);
      if (slash == std::string::npos) break;
      dir += "/" + rel.substr(pos, slash - pos);
      if (::mkdir(dir.c_str(), 0755) == 0) dirs_.push_back(dir);
      pos = slash + 1;
    }
    const std::string path = root_ + "/" + rel;
    std::ofstream f(path);
    f << contents << "\n";
    files_.push_back(path);
  }

  /// cpuN/topology/{core_id,physical_package_id} for one CPU.
  void add_cpu(int cpu, int core, int pkg) {
    const std::string base =
        "devices/system/cpu/cpu" + std::to_string(cpu) + "/topology/";
    write(base + "core_id", std::to_string(core));
    write(base + "physical_package_id", std::to_string(pkg));
  }

private:
  std::string root_;
  std::vector<std::string> dirs_;
  std::vector<std::string> files_;
};

/// 2 nodes x 4 CPUs, SMT pairs: node0 = cpus 0-3 (cores 0,0,1,1 on pkg 0),
/// node1 = cpus 4-7 (cores 0,0,1,1 on pkg 1).
void build_two_node(SysFixture& fx) {
  fx.write("devices/system/cpu/online", "0-7");
  fx.write("devices/system/node/node0/cpulist", "0-3");
  fx.write("devices/system/node/node1/cpulist", "4-7");
  for (int c = 0; c < 8; ++c) {
    fx.add_cpu(c, (c % 4) / 2, c / 4);
  }
}

// ------------------------------------------------------------ parse_cpulist

TEST(ParseCpulist, RangesSinglesAndWhitespace) {
  EXPECT_EQ(parse_cpulist("0-3"), (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(parse_cpulist("5"), (std::vector<int>{5}));
  EXPECT_EQ(parse_cpulist("0-3,8-11"),
            (std::vector<int>{0, 1, 2, 3, 8, 9, 10, 11}));
  EXPECT_EQ(parse_cpulist(" 2 , 0 ,2"), (std::vector<int>{0, 2}));
  EXPECT_TRUE(parse_cpulist("").empty());
  EXPECT_TRUE(parse_cpulist(" , ,").empty());
}

TEST(ParseCpulist, MalformedTokensThrow) {
  EXPECT_THROW((void)parse_cpulist("abc"), support::Error);
  EXPECT_THROW((void)parse_cpulist("1,x-3"), support::Error);
  EXPECT_THROW((void)parse_cpulist("5-2"), support::Error);
}

// ------------------------------------------------------------------ detect

TEST(Detect, TwoNodeFixture) {
  SysFixture fx;
  build_two_node(fx);
  const Machine m = support::topo::detect(fx.root());
  EXPECT_TRUE(m.from_sysfs);
  EXPECT_EQ(m.node_count(), 2u);
  EXPECT_EQ(m.cpu_count(), 8u);
  EXPECT_EQ(m.cpus_per_node(), 4u);
  EXPECT_EQ(m.smt_siblings, 2u); // cpus 0/1 share (pkg 0, core 0)
  ASSERT_NE(m.find_cpu(5), nullptr);
  EXPECT_EQ(m.find_cpu(5)->node, 1);
  EXPECT_EQ(m.find_cpu(42), nullptr);
  // SMT pairs resolve to the same machine-unique core key; cross-package
  // core_id collisions (both packages number cores from 0) must not.
  EXPECT_EQ(m.find_cpu(0)->core, m.find_cpu(1)->core);
  EXPECT_NE(m.find_cpu(0)->core, m.find_cpu(4)->core);
}

TEST(Detect, SingleNodeFixture) {
  SysFixture fx;
  fx.write("devices/system/cpu/online", "0-3");
  fx.write("devices/system/node/node0/cpulist", "0-3");
  for (int c = 0; c < 4; ++c) fx.add_cpu(c, c, 0);
  const Machine m = support::topo::detect(fx.root());
  EXPECT_TRUE(m.from_sysfs);
  EXPECT_EQ(m.node_count(), 1u);
  EXPECT_EQ(m.cpu_count(), 4u);
  EXPECT_EQ(m.smt_siblings, 1u);
}

TEST(Detect, OfflineCpusAreExcluded) {
  SysFixture fx;
  fx.write("devices/system/cpu/online", "0-2"); // cpu 3 offline
  fx.write("devices/system/node/node0/cpulist", "0-3");
  for (int c = 0; c < 4; ++c) fx.add_cpu(c, c, 0);
  const Machine m = support::topo::detect(fx.root());
  EXPECT_EQ(m.cpu_count(), 3u);
  EXPECT_EQ(m.find_cpu(3), nullptr);
}

TEST(Detect, SparseCpulistAndNodeIdGaps) {
  SysFixture fx;
  fx.write("devices/system/cpu/online", "0-3,8-11");
  fx.write("devices/system/node/node0/cpulist", "0-3");
  fx.write("devices/system/node/node2/cpulist", "8-11"); // node1 absent
  for (int c : {0, 1, 2, 3, 8, 9, 10, 11}) fx.add_cpu(c, c, c >= 8 ? 1 : 0);
  const Machine m = support::topo::detect(fx.root());
  EXPECT_EQ(m.node_count(), 2u);
  EXPECT_EQ(m.cpu_count(), 8u);
  EXPECT_EQ(m.nodes[1].id, 2); // sysfs id preserved, index dense
  EXPECT_EQ(m.find_cpu(9)->node, 2);
}

TEST(Detect, CpuLessNodesAreDropped) {
  SysFixture fx;
  fx.write("devices/system/cpu/online", "0-1");
  fx.write("devices/system/node/node0/cpulist", "0-1");
  fx.write("devices/system/node/node1/cpulist", ""); // memory-only node
  for (int c = 0; c < 2; ++c) fx.add_cpu(c, c, 0);
  const Machine m = support::topo::detect(fx.root());
  EXPECT_EQ(m.node_count(), 1u);
}

TEST(Detect, MissingRootFallsBack) {
  const Machine m = support::topo::detect("/nonexistent-sts-sys-root");
  EXPECT_FALSE(m.from_sysfs);
  EXPECT_EQ(m.node_count(), 1u);
  EXPECT_GE(m.cpu_count(), 1u);
  EXPECT_EQ(m.cpu_count(),
            std::max(1u, std::thread::hardware_concurrency()));
}

TEST(Detect, MissingNodeTreeYieldsSingleNode) {
  SysFixture fx;
  fx.write("devices/system/cpu/online", "0-1");
  for (int c = 0; c < 2; ++c) fx.add_cpu(c, c, 0);
  const Machine m = support::topo::detect(fx.root());
  EXPECT_TRUE(m.from_sysfs); // cpu structure is real even without nodes
  EXPECT_EQ(m.node_count(), 1u);
  EXPECT_EQ(m.cpu_count(), 2u);
}

TEST(Detect, StsNumaOffDisablesDomains) {
  ::setenv("STS_NUMA", "off", 1);
  EXPECT_TRUE(support::topo::numa_disabled());
  EXPECT_EQ(support::topo::effective_domains(16), 1u);
  ::setenv("STS_NUMA", "0", 1);
  EXPECT_TRUE(support::topo::numa_disabled());
  ::unsetenv("STS_NUMA");
  EXPECT_FALSE(support::topo::numa_disabled());
  // Domains never exceed the worker count, whatever the machine has.
  EXPECT_EQ(support::topo::effective_domains(1), 1u);
}

// ------------------------------------------------------- scheduler placement

TEST(SchedulerPlacement, UnpinnedDomainsAreContiguousRanges) {
  flux::Scheduler sched({.threads = 4, .numa_domains = 2, .numa_aware = true});
  EXPECT_EQ(sched.domain_of_worker(0), 0u);
  EXPECT_EQ(sched.domain_of_worker(1), 0u);
  EXPECT_EQ(sched.domain_of_worker(2), 1u);
  EXPECT_EQ(sched.domain_of_worker(3), 1u);
  EXPECT_EQ(sched.cpu_of_worker(0), -1); // unpinned
}

TEST(SchedulerPlacement, CompactPinningFillsNodeZeroFirst) {
  SysFixture fx;
  build_two_node(fx);
  const Machine m = support::topo::detect(fx.root());
  flux::Scheduler sched({.threads = 8,
                         .numa_domains = 2,
                         .numa_aware = true,
                         .affinity = flux::Affinity::kCompact,
                         .machine = &m});
  // Compact order: node 0's cpus (core-sorted) before node 1's. Binding to
  // fixture cpus that don't exist on the real host just floats the worker;
  // the placement *tables* are what hints and stealing consult.
  for (unsigned w = 0; w < 4; ++w) {
    EXPECT_EQ(sched.domain_of_worker(w), 0u) << w;
    EXPECT_LT(sched.cpu_of_worker(w), 4);
  }
  for (unsigned w = 4; w < 8; ++w) {
    EXPECT_EQ(sched.domain_of_worker(w), 1u) << w;
    EXPECT_GE(sched.cpu_of_worker(w), 4);
  }
}

TEST(SchedulerPlacement, ScatterPinningInterleavesNodes) {
  SysFixture fx;
  build_two_node(fx);
  const Machine m = support::topo::detect(fx.root());
  flux::Scheduler sched({.threads = 4,
                         .numa_domains = 2,
                         .numa_aware = true,
                         .affinity = flux::Affinity::kScatter,
                         .machine = &m});
  EXPECT_EQ(sched.domain_of_worker(0), 0u);
  EXPECT_EQ(sched.domain_of_worker(1), 1u);
  EXPECT_EQ(sched.domain_of_worker(2), 0u);
  EXPECT_EQ(sched.domain_of_worker(3), 1u);
}

TEST(SchedulerPlacement, AffinityFromEnvParsesAllValues) {
  ::setenv("STS_AFFINITY", "compact", 1);
  EXPECT_EQ(flux::Scheduler::Config::affinity_from_env(),
            flux::Affinity::kCompact);
  ::setenv("STS_AFFINITY", "scatter", 1);
  EXPECT_EQ(flux::Scheduler::Config::affinity_from_env(),
            flux::Affinity::kScatter);
  ::setenv("STS_AFFINITY", "off", 1);
  EXPECT_EQ(flux::Scheduler::Config::affinity_from_env(),
            flux::Affinity::kOff);
  ::unsetenv("STS_AFFINITY");
}

TEST(SchedulerPlacement, TopologyAwareHonorsNumaOff) {
  ::setenv("STS_NUMA", "off", 1);
  const flux::Scheduler::Config c =
      flux::Scheduler::Config::topology_aware(4);
  ::unsetenv("STS_NUMA");
  EXPECT_EQ(c.numa_domains, 1u);
  EXPECT_FALSE(c.numa_aware);
  EXPECT_EQ(c.affinity, flux::Affinity::kOff);
  EXPECT_EQ(c.threads, 4u);
}

TEST(SchedulerStats, TierCountsSumToTotalSteals) {
  flux::Scheduler sched({.threads = 4, .numa_domains = 2, .numa_aware = true});
  std::atomic<int> ran{0};
  // External submissions round-robin across workers; idle workers must
  // steal, and every successful steal lands in exactly one tier.
  for (int i = 0; i < 400; ++i) {
    sched.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
  }
  sched.wait_for_quiescence();
  EXPECT_EQ(ran.load(), 400);
  const flux::Scheduler::Stats s = sched.stats();
  EXPECT_EQ(s.steals, s.steals_sibling + s.steals_local + s.steals_remote);
  EXPECT_EQ(s.cross_domain_steals, s.steals_remote);
  EXPECT_EQ(s.steals_sibling, 0u); // unpinned workers have no core identity
}

// ------------------------------------------------- CSB partition & placement

sparse::Coo tridiag(la::index_t n) {
  sparse::Coo coo(n, n);
  for (la::index_t i = 0; i < n; ++i) {
    coo.add(i, i, 2.0);
    if (i > 0) coo.add(i, i - 1, -1.0);
    if (i + 1 < n) coo.add(i, i + 1, -1.0);
  }
  return coo;
}

TEST(DomainMap, PartitionIsContiguousAndBalanced) {
  const sparse::Csb csb = sparse::Csb::from_coo(tridiag(1000), 32);
  const auto map = csb.partition_block_rows(3);
  ASSERT_EQ(map.domains(), 3);
  EXPECT_EQ(map.stripe_end.back(), csb.block_rows());
  la::index_t prev = 0;
  for (int d = 0; d < 3; ++d) {
    EXPECT_GE(map.stripe_end[static_cast<std::size_t>(d)], prev);
    // Every row inside the stripe reports this owner.
    for (la::index_t bi = prev; bi < map.stripe_end[static_cast<std::size_t>(d)];
         ++bi) {
      EXPECT_EQ(map.owner(bi), d);
    }
    prev = map.stripe_end[static_cast<std::size_t>(d)];
  }
  // A uniform tridiagonal matrix splits near-evenly: no stripe is empty and
  // none holds more than half the rows.
  prev = 0;
  for (int d = 0; d < 3; ++d) {
    const la::index_t len =
        map.stripe_end[static_cast<std::size_t>(d)] - prev;
    EXPECT_GT(len, 0);
    EXPECT_LE(len, csb.block_rows() / 2 + 1);
    prev = map.stripe_end[static_cast<std::size_t>(d)];
  }
}

TEST(DomainMap, SingleDomainOwnsEverything) {
  const sparse::Csb csb = sparse::Csb::from_coo(tridiag(100), 16);
  const auto map = csb.partition_block_rows(1);
  EXPECT_EQ(map.domains(), 1);
  EXPECT_EQ(map.owner(0), 0);
  EXPECT_EQ(map.owner(csb.block_rows() - 1), 0);
}

TEST(DomainMap, MoreDomainsThanRowsYieldsEmptyTailStripes) {
  const sparse::Csb csb = sparse::Csb::from_coo(tridiag(64), 32); // 2 rows
  const auto map = csb.partition_block_rows(4);
  EXPECT_EQ(map.stripe_end.back(), csb.block_rows());
  for (la::index_t bi = 0; bi < csb.block_rows(); ++bi) {
    EXPECT_LT(map.owner(bi), 4);
  }
}

TEST(PlaceStripes, InlineExecutionRoundTripsTheMatrix) {
  sparse::Csb csb = sparse::Csb::from_coo(tridiag(500), 17);
  const sparse::Coo before = csb.to_coo();
  const auto map = csb.partition_block_rows(3);
  int submitted = 0;
  csb.place_stripes(
      map,
      [&submitted](int domain, std::function<void()> work) {
        EXPECT_GE(domain, 0);
        EXPECT_LT(domain, 3);
        ++submitted;
        work(); // inline "scheduler"
      },
      [] {});
  EXPECT_GT(submitted, 0);
  const sparse::Coo after = csb.to_coo();
  ASSERT_EQ(before.entries().size(), after.entries().size());
  for (std::size_t i = 0; i < before.entries().size(); ++i) {
    EXPECT_EQ(before.entries()[i].row, after.entries()[i].row);
    EXPECT_EQ(before.entries()[i].col, after.entries()[i].col);
    EXPECT_EQ(before.entries()[i].value, after.entries()[i].value);
  }
}

TEST(PlaceStripes, OnSchedulerWithDomainHints) {
  sparse::Csb csb = sparse::Csb::from_coo(tridiag(800), 32);
  const sparse::Coo before = csb.to_coo();
  flux::Scheduler sched({.threads = 2, .numa_domains = 2, .numa_aware = true});
  const auto map = solver::place_csb(csb, sched);
  EXPECT_EQ(map.domains(), 2);
  const sparse::Coo after = csb.to_coo();
  ASSERT_EQ(before.entries().size(), after.entries().size());
  for (std::size_t i = 0; i < before.entries().size(); ++i) {
    EXPECT_EQ(before.entries()[i].value, after.entries()[i].value);
  }
}

} // namespace
} // namespace sts
