#include <gtest/gtest.h>

#include "sparse/generators.hpp"
#include "tuning/block_select.hpp"
#include "tuning/sweep.hpp"

namespace sts::tune {
namespace {

TEST(Buckets, SixBucketsCoverEightTo511) {
  const auto buckets = heuristic_buckets();
  ASSERT_EQ(buckets.size(), 6u);
  EXPECT_EQ(buckets.front().lo, 8);
  EXPECT_EQ(buckets.back().hi, 511);
  for (std::size_t i = 1; i < buckets.size(); ++i) {
    EXPECT_EQ(buckets[i].lo, buckets[i - 1].hi + 1);
  }
  EXPECT_EQ(buckets[0].label(), "8-15");
}

class BucketSizeProperty
    : public ::testing::TestWithParam<std::pair<index_t, int>> {};

TEST_P(BucketSizeProperty, BlockSizeLandsInsideBucket) {
  const auto [rows, bucket_idx] = GetParam();
  const Bucket bucket = heuristic_buckets()[static_cast<std::size_t>(bucket_idx)];
  const index_t size = block_size_for_bucket(rows, bucket);
  if (size == 0) {
    EXPECT_LT(rows, bucket.lo); // only fails for too-small matrices
    return;
  }
  const index_t count = (rows + size - 1) / size;
  EXPECT_GE(count, bucket.lo);
  EXPECT_LE(count, bucket.hi);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BucketSizeProperty,
    ::testing::Values(std::pair<index_t, int>{100, 0},
                      std::pair<index_t, int>{100, 3},
                      std::pair<index_t, int>{5000, 1},
                      std::pair<index_t, int>{5000, 5},
                      std::pair<index_t, int>{123457, 2},
                      std::pair<index_t, int>{123457, 5},
                      std::pair<index_t, int>{1 << 20, 0},
                      std::pair<index_t, int>{1 << 20, 4},
                      std::pair<index_t, int>{7, 0},
                      std::pair<index_t, int>{511, 5}));

TEST(BlockSizeForCount, ApproximatesTarget) {
  EXPECT_EQ(block_size_for_count(1000, 10), 100);
  EXPECT_EQ(block_size_for_count(1001, 10), 101);
  EXPECT_GE(block_size_for_count(5, 10), 1);
}

TEST(SweepSizes, PowersOfTwoInPaperRange) {
  const auto sizes = sweep_block_sizes(1 << 20);
  ASSERT_FALSE(sizes.empty());
  EXPECT_EQ(sizes.front(), 1024);
  for (index_t s : sizes) {
    EXPECT_EQ(s & (s - 1), 0); // power of two
    EXPECT_GE((static_cast<index_t>(1) << 20) / s, 1);
  }
}

TEST(Recommendations, FollowPaperRuleOfThumb) {
  // DeepSparse/HPX: 32-63 on multicore, 64-127 on manycore.
  EXPECT_EQ(recommended_bucket(solver::Version::kDs, 28).lo, 32);
  EXPECT_EQ(recommended_bucket(solver::Version::kFlux, 28).lo, 32);
  EXPECT_EQ(recommended_bucket(solver::Version::kDs, 128).lo, 64);
  EXPECT_EQ(recommended_bucket(solver::Version::kFlux, 128).lo, 64);
  // Regent: coarse 16-31 everywhere.
  EXPECT_EQ(recommended_bucket(solver::Version::kRgt, 28).lo, 16);
  EXPECT_EQ(recommended_bucket(solver::Version::kRgt, 128).lo, 16);
}

TEST(Recommendations, SizeIsPositiveEvenForTinyMatrices) {
  EXPECT_GT(recommended_block_size(solver::Version::kDs, 28, 10), 0);
  EXPECT_GT(recommended_block_size(solver::Version::kRgt, 128, 1000000), 0);
}

TEST(SimulatedSweep, ReturnsOnePointPerFeasibleBucket) {
  sparse::Coo coo = sparse::gen_fem3d(10, 10, 10, 1, 44);
  sparse::Csr csr = sparse::Csr::from_coo(coo);
  const SweepResult r = sweep_block_sizes_simulated(
      csr, SweepSolver::kLanczos, solver::Version::kDs,
      sim::MachineModel::testbox(4));
  ASSERT_FALSE(r.points.empty());
  for (const SweepPoint& p : r.points) {
    EXPECT_GT(p.block_size, 0);
    EXPECT_GE(p.block_count, 8);
    EXPECT_LE(p.block_count, 511);
    EXPECT_GT(p.simulated_seconds, 0.0);
    EXPECT_GT(p.tasks, 0u);
  }
  EXPECT_LT(r.best, r.points.size());
  EXPECT_EQ(r.best_block_size(), r.points[r.best].block_size);
  for (const SweepPoint& p : r.points) {
    EXPECT_LE(r.points[r.best].simulated_seconds, p.simulated_seconds);
  }
}

TEST(SimulatedSweep, WorksForEveryVersion) {
  sparse::Coo coo = sparse::gen_banded_random(600, 8, 0.5, 45);
  sparse::Csr csr = sparse::Csr::from_coo(coo);
  for (solver::Version v : solver::kAllVersions) {
    const SweepResult r = sweep_block_sizes_simulated(
        csr, SweepSolver::kLobpcg, v, sim::MachineModel::testbox(2),
        /*full_sweep=*/false, /*nev=*/4);
    EXPECT_GT(r.best_block_size(), 0) << solver::to_string(v);
  }
}

TEST(SimulatedSweep, FullSweepUsesPowerOfTwoGrid) {
  sparse::Coo coo = sparse::gen_fem3d(14, 14, 14, 1, 46);
  sparse::Csr csr = sparse::Csr::from_coo(coo);
  const SweepResult r = sweep_block_sizes_simulated(
      csr, SweepSolver::kLanczos, solver::Version::kFlux,
      sim::MachineModel::testbox(2), /*full_sweep=*/true);
  ASSERT_FALSE(r.points.empty());
  for (const SweepPoint& p : r.points) {
    EXPECT_EQ(p.block_size & (p.block_size - 1), 0);
  }
}

} // namespace
} // namespace sts::tune
