#include <gtest/gtest.h>

#include "bsp/kernels.hpp"
#include "sparse/generators.hpp"
#include "support/rng.hpp"

namespace sts::bsp {
namespace {

using la::DenseMatrix;
using sparse::Coo;
using sparse::Csb;
using sparse::Csr;

struct Fixture {
  Coo coo;
  Csr csr;
  Csb csb;
  DenseMatrix dense;

  explicit Fixture(index_t block = 37)
      : coo(sparse::gen_fem3d(6, 6, 6, 1, 21)),
        csr(Csr::from_coo(coo)),
        csb(Csb::from_coo(coo, block)),
        dense(coo.to_dense()) {}
};

TEST(BspSpmv, CsrAndCsbMatchDense) {
  Fixture f;
  const index_t m = f.csr.rows();
  std::vector<double> x(static_cast<std::size_t>(m));
  support::Xoshiro256 rng(3);
  for (double& v : x) v = rng.uniform(-1, 1);
  std::vector<double> y_csr(static_cast<std::size_t>(m));
  std::vector<double> y_csb(static_cast<std::size_t>(m));
  spmv(f.csr, x, y_csr);
  spmv(f.csb, x, y_csb);
  for (index_t r = 0; r < m; ++r) {
    double acc = 0.0;
    for (index_t c = 0; c < m; ++c) {
      acc += f.dense.at(r, c) * x[static_cast<std::size_t>(c)];
    }
    ASSERT_NEAR(y_csr[static_cast<std::size_t>(r)], acc, 1e-9);
    ASSERT_NEAR(y_csb[static_cast<std::size_t>(r)], acc, 1e-9);
  }
}

class BspSpmmParam : public ::testing::TestWithParam<std::pair<index_t, index_t>> {};

TEST_P(BspSpmmParam, CsrEqualsCsbForAllShapes) {
  const auto [block, ncols] = GetParam();
  Fixture f(block);
  const index_t m = f.csr.rows();
  DenseMatrix x(m, ncols);
  support::Xoshiro256 rng(4);
  x.fill_random(rng);
  DenseMatrix y_csr(m, ncols);
  DenseMatrix y_csb(m, ncols);
  spmm(f.csr, x.view(), y_csr.view());
  spmm(f.csb, x.view(), y_csb.view());
  for (index_t i = 0; i < m; ++i) {
    for (index_t j = 0; j < ncols; ++j) {
      ASSERT_NEAR(y_csr.at(i, j), y_csb.at(i, j), 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BspSpmmParam,
    ::testing::Values(std::pair<index_t, index_t>{16, 1},
                      std::pair<index_t, index_t>{16, 8},
                      std::pair<index_t, index_t>{64, 4},
                      std::pair<index_t, index_t>{216, 16},
                      std::pair<index_t, index_t>{1000, 2}));

TEST(BspXy, MatchesSerialGemm) {
  DenseMatrix x(101, 5);
  DenseMatrix z(5, 3);
  DenseMatrix y(101, 3);
  support::Xoshiro256 rng(8);
  x.fill_random(rng);
  z.fill_random(rng);
  y.fill_random(rng);
  DenseMatrix expected = y.clone();
  la::gemm(-1.0, x.view(), z.view(), 1.0, expected.view());
  xy(x.view(), z.view(), y.view(), 13, -1.0, 1.0);
  for (index_t i = 0; i < 101; ++i) {
    for (index_t j = 0; j < 3; ++j) {
      ASSERT_NEAR(y.at(i, j), expected.at(i, j), 1e-12);
    }
  }
}

TEST(BspXty, ReducesPartialsCorrectly) {
  DenseMatrix x(97, 4);
  DenseMatrix y(97, 6);
  support::Xoshiro256 rng(9);
  x.fill_random(rng);
  y.fill_random(rng);
  DenseMatrix p(4, 6);
  xty(x.view(), y.view(), p.view(), 10);
  DenseMatrix expected(4, 6);
  la::gemm_tn(1.0, x.view(), y.view(), 0.0, expected.view());
  for (index_t i = 0; i < 4; ++i) {
    for (index_t j = 0; j < 6; ++j) {
      ASSERT_NEAR(p.at(i, j), expected.at(i, j), 1e-10);
    }
  }
}

TEST(BspVector, AxpyScalDot) {
  DenseMatrix x(55, 2);
  DenseMatrix y(55, 2);
  support::Xoshiro256 rng(10);
  x.fill_random(rng);
  y.fill_random(rng);
  const double expected_dot = la::dot(x.view(), y.view());
  EXPECT_NEAR(dot(x.view(), y.view(), 7), expected_dot, 1e-10);

  DenseMatrix y2 = y.clone();
  la::axpy(0.5, x.view(), y2.view());
  axpy(0.5, x.view(), y.view(), 9);
  for (index_t i = 0; i < 55; ++i) {
    for (index_t j = 0; j < 2; ++j) {
      ASSERT_NEAR(y.at(i, j), y2.at(i, j), 1e-13);
    }
  }
  scal(2.0, y.view(), 5);
  for (index_t i = 0; i < 55; ++i) {
    for (index_t j = 0; j < 2; ++j) {
      ASSERT_NEAR(y.at(i, j), 2.0 * y2.at(i, j), 1e-13);
    }
  }
}

TEST(BspVector, SpanKernelsMatchSerial) {
  std::vector<double> x(1000);
  std::vector<double> y(1000);
  support::Xoshiro256 rng(11);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = rng.uniform(-1, 1);
    y[i] = rng.uniform(-1, 1);
  }
  const double ref = la::dot(std::span<const double>(x), std::span<const double>(y));
  EXPECT_NEAR(dot(std::span<const double>(x), std::span<const double>(y)), ref, 1e-10);
  std::vector<double> y2 = y;
  axpy(3.0, std::span<const double>(x), std::span<double>(y));
  for (std::size_t i = 0; i < y.size(); ++i) {
    ASSERT_NEAR(y[i], y2[i] + 3.0 * x[i], 1e-13);
  }
  scal(0.0, std::span<double>(y));
  for (double v : y) ASSERT_EQ(v, 0.0);
}

} // namespace
} // namespace sts::bsp
