#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <thread>

#include "rgt/runtime.hpp"
#include "support/error.hpp"
#include "support/fault.hpp"
#include "support/rng.hpp"

namespace sts::rgt {
namespace {

Runtime::Config cfg(unsigned workers = 2, bool verify = false) {
  return {.cpu_workers = workers,
          .util_threads = 1,
          .verify_index_launches = verify,
          .window = 1024};
}

TEST(Runtime, RunsIndependentTasks) {
  std::vector<double> data(10, 0.0);
  Runtime rt(cfg());
  const RegionId r = rt.register_region(data, "d");
  rt.partition_equal(r, 10);
  for (std::int32_t i = 0; i < 10; ++i) {
    rt.execute({[&data, i](TaskContext&) { data[static_cast<std::size_t>(i)] = i; },
                {{r, i, Privilege::kWrite}},
                "w"});
  }
  rt.wait_all();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(data[static_cast<std::size_t>(i)], i);
  EXPECT_EQ(rt.stats().tasks_launched, 10u);
}

TEST(Runtime, ReadAfterWriteIsOrdered) {
  std::vector<double> data(1, 0.0);
  std::vector<double> out(1, 0.0);
  Runtime rt(cfg(4));
  const RegionId rd = rt.register_region(data, "d");
  const RegionId ro = rt.register_region(out, "o");
  for (int iter = 0; iter < 50; ++iter) {
    rt.execute({[&data](TaskContext&) { data[0] += 1.0; },
                {{rd, -1, Privilege::kReadWrite}},
                "inc"});
  }
  rt.execute({[&data, &out](TaskContext&) { out[0] = data[0]; },
              {{rd, -1, Privilege::kRead}, {ro, -1, Privilege::kWrite}},
              "read"});
  rt.wait_all();
  EXPECT_EQ(out[0], 50.0);
}

TEST(Runtime, ParallelReadsDoNotSerialize) {
  // Many readers of one region plus a final writer: readers must all finish
  // before the writer (WAR).
  std::vector<double> data(1, 5.0);
  Runtime rt(cfg(4));
  const RegionId r = rt.register_region(data, "d");
  std::atomic<int> reads{0};
  std::atomic<int> reads_at_write{-1};
  for (int i = 0; i < 32; ++i) {
    rt.execute({[&](TaskContext&) { reads.fetch_add(1); },
                {{r, -1, Privilege::kRead}},
                "r"});
  }
  rt.execute({[&](TaskContext&) { reads_at_write = reads.load(); },
              {{r, -1, Privilege::kWrite}},
              "w"});
  rt.wait_all();
  EXPECT_EQ(reads_at_write.load(), 32);
}

TEST(Runtime, PieceRangesPartitionEvenly) {
  std::vector<double> data(103, 0.0);
  Runtime rt(cfg());
  const RegionId r = rt.register_region(data, "d");
  rt.partition_equal(r, 10);
  EXPECT_EQ(rt.pieces_of(r), 10);
  std::size_t covered = 0;
  std::size_t prev_end = 0;
  for (std::int32_t p = 0; p < 10; ++p) {
    const auto [b, e] = rt.piece_range(r, p);
    EXPECT_EQ(b, prev_end);
    prev_end = e;
    covered += e - b;
  }
  EXPECT_EQ(covered, 103u);
}

TEST(Runtime, DisjointPiecesRunWithoutFalseDependencies) {
  std::vector<double> data(8, 0.0);
  Runtime rt(cfg(4));
  const RegionId r = rt.register_region(data, "d");
  rt.partition_equal(r, 8);
  // Writers on distinct pieces: no dependence edges should be created.
  for (std::int32_t i = 0; i < 8; ++i) {
    rt.execute({[&data, i](TaskContext&) { data[static_cast<std::size_t>(i)] = 1.0; },
                {{r, i, Privilege::kWrite}},
                "w"});
  }
  rt.wait_all();
  EXPECT_EQ(rt.stats().dependence_edges, 0u);
}

TEST(IndexLaunch, RunsAllPointTasks) {
  std::vector<double> data(64, 0.0);
  Runtime rt(cfg(4));
  const RegionId r = rt.register_region(data, "d");
  rt.partition_equal(r, 64);
  rt.index_launch(64, [&](std::int32_t i) {
    return TaskLaunch{[&data, i](TaskContext&) {
                        data[static_cast<std::size_t>(i)] = 2.0 * i;
                      },
                      {{r, i, Privilege::kWrite}},
                      "il"};
  });
  rt.wait_all();
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(data[static_cast<std::size_t>(i)], 2.0 * i);
  }
}

TEST(IndexLaunch, VerificationCatchesInterference) {
  std::vector<double> data(8, 0.0);
  Runtime rt(cfg(2, /*verify=*/true));
  const RegionId r = rt.register_region(data, "d");
  rt.partition_equal(r, 8);
  EXPECT_THROW(rt.index_launch(2,
                               [&](std::int32_t) {
                                 return TaskLaunch{[](TaskContext&) {},
                                                   {{r, 3, Privilege::kWrite}},
                                                   "conflict"};
                               }),
               support::Error);
  rt.wait_all();
}

TEST(IndexLaunch, VerificationAllowsReadSharing) {
  std::vector<double> data(8, 0.0);
  Runtime rt(cfg(2, /*verify=*/true));
  const RegionId r = rt.register_region(data, "d");
  std::vector<double> out(8, 0.0);
  const RegionId ro = rt.register_region(out, "o");
  rt.partition_equal(ro, 8);
  EXPECT_NO_THROW(rt.index_launch(8, [&](std::int32_t i) {
    return TaskLaunch{[](TaskContext&) {},
                      {{r, -1, Privilege::kRead}, {ro, i, Privilege::kWrite}},
                      "ok"};
  }));
  rt.wait_all();
}

TEST(Reduction, FoldsPerWorkerInstances) {
  std::vector<double> acc(4, 0.0);
  std::vector<double> out(4, 0.0);
  Runtime rt(cfg(4));
  const RegionId r = rt.register_region(acc, "acc");
  const RegionId ro = rt.register_region(out, "out");
  for (int i = 0; i < 100; ++i) {
    rt.execute({[r](TaskContext& ctx) {
                  auto buf = ctx.reduce_target(r);
                  buf[0] += 1.0;
                  buf[2] += 0.5;
                },
                {{r, -1, Privilege::kReduce}},
                "red"});
  }
  rt.execute({[&acc, &out](TaskContext&) {
                for (int i = 0; i < 4; ++i) out[static_cast<std::size_t>(i)] = acc[static_cast<std::size_t>(i)];
              },
              {{r, -1, Privilege::kRead},
               {ro, -1, Privilege::kWrite}},
              "read"});
  rt.wait_all();
  EXPECT_DOUBLE_EQ(out[0], 100.0);
  EXPECT_DOUBLE_EQ(out[1], 0.0);
  EXPECT_DOUBLE_EQ(out[2], 50.0);
  EXPECT_GE(rt.stats().folds_inserted, 1u);
}

TEST(Reduction, AccumulatesOntoExistingContents) {
  std::vector<double> acc(1, 10.0);
  Runtime rt(cfg(2));
  const RegionId r = rt.register_region(acc, "acc");
  for (int i = 0; i < 5; ++i) {
    rt.execute({[r](TaskContext& ctx) { ctx.reduce_target(r)[0] += 1.0; },
                {{r, -1, Privilege::kReduce}},
                "red"});
  }
  rt.wait_all(); // wait_all closes the epoch
  EXPECT_DOUBLE_EQ(acc[0], 15.0);
}

TEST(Tracing, ReplayMatchesDirectExecution) {
  const int np = 6;
  std::vector<double> x(static_cast<std::size_t>(np), 1.0);
  std::vector<double> y(static_cast<std::size_t>(np), 0.0);
  Runtime rt(cfg(4));
  const RegionId rx = rt.register_region(x, "x");
  const RegionId ry = rt.register_region(y, "y");
  rt.partition_equal(rx, np);
  rt.partition_equal(ry, np);

  auto one_iteration = [&] {
    for (std::int32_t i = 0; i < np; ++i) {
      rt.execute({[&x, &y, i](TaskContext&) {
                    y[static_cast<std::size_t>(i)] =
                        2.0 * x[static_cast<std::size_t>(i)];
                  },
                  {{rx, i, Privilege::kRead}, {ry, i, Privilege::kWrite}},
                  "double"});
    }
    for (std::int32_t i = 0; i < np; ++i) {
      rt.execute({[&x, &y, i](TaskContext&) {
                    x[static_cast<std::size_t>(i)] =
                        y[static_cast<std::size_t>(i)] + 1.0;
                  },
                  {{ry, i, Privilege::kRead}, {rx, i, Privilege::kReadWrite}},
                  "inc"});
    }
  };

  for (int iter = 0; iter < 5; ++iter) {
    rt.begin_trace(1);
    one_iteration();
    rt.end_trace(1);
    rt.wait_all();
  }
  // x follows x -> 2x + 1 five times from x=1: 1,3,7,15,31,63.
  for (int i = 0; i < np; ++i) {
    EXPECT_DOUBLE_EQ(x[static_cast<std::size_t>(i)], 63.0);
  }
  EXPECT_GT(rt.stats().traced_replays, 0u);
}

TEST(Tracing, ReplaySkipsAnalysisWork) {
  std::vector<double> x(4, 0.0);
  Runtime rt(cfg(2));
  const RegionId r = rt.register_region(x, "x");
  rt.partition_equal(r, 4);
  auto body = [&](std::int32_t i) {
    return TaskLaunch{[&x, i](TaskContext&) { x[static_cast<std::size_t>(i)] += 1.0; },
                      {{r, i, Privilege::kReadWrite}},
                      "t"};
  };
  rt.begin_trace(9);
  for (std::int32_t i = 0; i < 4; ++i) rt.execute(body(i));
  rt.end_trace(9);
  rt.wait_all();
  const auto checks_after_capture = rt.stats().piece_checks;
  rt.begin_trace(9);
  for (std::int32_t i = 0; i < 4; ++i) rt.execute(body(i));
  rt.end_trace(9);
  rt.wait_all();
  EXPECT_EQ(rt.stats().piece_checks, checks_after_capture);
  for (double v : x) EXPECT_DOUBLE_EQ(v, 2.0);
}

/// Property test: a random sequence of read/write/readwrite tasks over
/// partitioned regions must produce the same result as serial execution.
TEST(Runtime, RandomProgramMatchesSerialSemantics) {
  support::Xoshiro256 rng(321);
  for (int trial = 0; trial < 6; ++trial) {
    const int np = 4 + static_cast<int>(rng.below(5));
    const int ntasks = 80;
    std::vector<double> serial(static_cast<std::size_t>(np), 0.0);
    std::vector<double> parallel(static_cast<std::size_t>(np), 0.0);

    struct Op {
      std::int32_t src;
      std::int32_t dst;
      double scale;
    };
    std::vector<Op> ops;
    for (int t = 0; t < ntasks; ++t) {
      ops.push_back({static_cast<std::int32_t>(rng.below(static_cast<std::uint64_t>(np))),
                     static_cast<std::int32_t>(rng.below(static_cast<std::uint64_t>(np))),
                     rng.uniform(0.5, 1.5)});
    }
    for (const Op& op : ops) {
      serial[static_cast<std::size_t>(op.dst)] =
          serial[static_cast<std::size_t>(op.dst)] * 0.5 +
          serial[static_cast<std::size_t>(op.src)] * op.scale + 1.0;
    }

    Runtime rt(cfg(4));
    const RegionId r = rt.register_region(parallel, "v");
    rt.partition_equal(r, np);
    for (const Op& op : ops) {
      std::vector<RegionReq> reqs;
      reqs.push_back({r, op.dst, Privilege::kReadWrite});
      if (op.src != op.dst) reqs.push_back({r, op.src, Privilege::kRead});
      rt.execute({[&parallel, op](TaskContext&) {
                    parallel[static_cast<std::size_t>(op.dst)] =
                        parallel[static_cast<std::size_t>(op.dst)] * 0.5 +
                        parallel[static_cast<std::size_t>(op.src)] * op.scale +
                        1.0;
                  },
                  std::move(reqs),
                  "op"});
    }
    rt.wait_all();
    for (int p = 0; p < np; ++p) {
      ASSERT_DOUBLE_EQ(parallel[static_cast<std::size_t>(p)],
                       serial[static_cast<std::size_t>(p)])
          << "trial " << trial << " piece " << p;
    }
  }
}

TEST(Faults, FailedTaskSuppressesSuccessorsAndNamesItself) {
  std::vector<double> data(1, 0.0);
  Runtime rt(cfg(2));
  const RegionId r = rt.register_region(data, "d");
  std::atomic<bool> ran_after{false};
  rt.execute({[](TaskContext&) { throw std::runtime_error("boom"); },
              {{r, -1, Privilege::kWrite}},
              "bad_write"});
  rt.execute({[&](TaskContext&) { ran_after = true; },
              {{r, -1, Privilege::kRead}},
              "read"});
  try {
    rt.wait_all();
    FAIL() << "expected TaskError";
  } catch (const support::TaskError& e) {
    EXPECT_EQ(e.task(), "bad_write");
    EXPECT_NE(std::string(e.what()).find("boom"), std::string::npos);
  }
  // The dependent read was suppressed, not run against poisoned data.
  EXPECT_FALSE(ran_after.load());
  // The runtime is clean again and reusable.
  EXPECT_FALSE(rt.cancelled());
  rt.execute({[&data](TaskContext&) { data[0] = 7.0; },
              {{r, -1, Privilege::kWrite}},
              "write"});
  rt.wait_all();
  EXPECT_EQ(data[0], 7.0);
}

TEST(Faults, InjectedFaultAtTaskSite) {
  std::vector<double> data(4, 0.0);
  Runtime rt(cfg(2));
  const RegionId r = rt.register_region(data, "d");
  rt.partition_equal(r, 4);
  support::fault::ScopedFault inject("rgt:task:hit=2");
  for (std::int32_t i = 0; i < 4; ++i) {
    rt.execute({[&data, i](TaskContext&) { data[static_cast<std::size_t>(i)] = 1.0; },
                {{r, i, Privilege::kWrite}},
                "w"});
  }
  try {
    rt.wait_all();
    FAIL() << "expected TaskError from the injected fault";
  } catch (const support::TaskError& e) {
    EXPECT_EQ(e.task(), "w");
    EXPECT_NE(std::string(e.what()).find("rgt:task"), std::string::npos);
  }
}

TEST(Faults, WaitAllDeadlineReportsInFlightTasks) {
  std::vector<double> data(1, 0.0);
  Runtime rt(cfg(2));
  const RegionId r = rt.register_region(data, "d");
  std::mutex m;
  std::condition_variable cv;
  bool release = false;
  rt.execute({[&](TaskContext&) {
                std::unique_lock<std::mutex> lock(m);
                cv.wait(lock, [&] { return release; });
              },
              {{r, -1, Privilege::kWrite}},
              "stall"});
  try {
    rt.wait_all(std::chrono::milliseconds(100));
    FAIL() << "expected TimeoutError";
  } catch (const support::TimeoutError& e) {
    EXPECT_NE(std::string(e.what()).find("in flight"), std::string::npos);
  }
  {
    std::lock_guard<std::mutex> lock(m);
    release = true;
  }
  cv.notify_all();
  rt.wait_all(std::chrono::seconds(5));
}

TEST(Runtime, StatsTrackAnalysis) {
  std::vector<double> d(4, 0.0);
  Runtime rt(cfg(2));
  const RegionId r = rt.register_region(d, "d");
  rt.partition_equal(r, 4);
  // An edge is only recorded when the predecessor is still pending at
  // analysis time, so hold "a" open until "b" has been analyzed (analysis
  // runs inline in execute() on this thread).
  std::atomic<bool> release{false};
  rt.execute({[&release](TaskContext&) {
                while (!release.load(std::memory_order_acquire)) {
                  std::this_thread::yield();
                }
              },
              {{r, 0, Privilege::kWrite}},
              "a"});
  rt.execute({[](TaskContext&) {}, {{r, 0, Privilege::kRead}}, "b"});
  release.store(true, std::memory_order_release);
  rt.wait_all();
  const auto st = rt.stats();
  EXPECT_EQ(st.tasks_launched, 2u);
  EXPECT_EQ(st.dependence_edges, 1u);
  EXPECT_GT(st.piece_checks, 0u);
  EXPECT_GE(st.analysis_seconds, 0.0);
}

} // namespace
} // namespace sts::rgt
