#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>

#include "support/aligned.hpp"
#include "support/env.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"
#include "support/timer.hpp"

namespace sts::support {
namespace {

TEST(AlignedBuffer, AllocatesCacheLineAligned) {
  AlignedBuffer<double> buf(1000);
  EXPECT_EQ(buf.size(), 1000u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buf.data()) % kCacheLineBytes,
            0u);
}

TEST(AlignedBuffer, EmptyBufferIsSafe) {
  AlignedBuffer<double> buf;
  EXPECT_TRUE(buf.empty());
  EXPECT_EQ(buf.data(), nullptr);
  AlignedBuffer<double> sized(0);
  EXPECT_TRUE(sized.empty());
}

TEST(AlignedBuffer, MoveTransfersOwnership) {
  AlignedBuffer<double> a(64);
  a[0] = 42.0;
  double* p = a.data();
  AlignedBuffer<double> b = std::move(a);
  EXPECT_EQ(b.data(), p);
  EXPECT_EQ(b[0], 42.0);
  EXPECT_EQ(a.data(), nullptr);
  AlignedBuffer<double> c(8);
  c = std::move(b);
  EXPECT_EQ(c.data(), p);
}

TEST(FirstTouch, ZeroesSerialAndParallel) {
  AlignedBuffer<double> a(4096);
  for (auto& v : a) v = 7.0;
  first_touch_zero(a.data(), a.size(), false);
  for (double v : a) ASSERT_EQ(v, 0.0);
  for (auto& v : a) v = 7.0;
  first_touch_zero(a.data(), a.size(), true);
  for (double v : a) ASSERT_EQ(v, 0.0);
}

TEST(Rng, DeterministicForSameSeed) {
  Xoshiro256 a(123);
  Xoshiro256 b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Xoshiro256 a(1);
  Xoshiro256 b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a() == b() ? 1 : 0;
  EXPECT_LT(same, 4);
}

TEST(Rng, UniformInUnitInterval) {
  Xoshiro256 rng(5);
  double lo = 1.0;
  double hi = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    lo = std::min(lo, u);
    hi = std::max(hi, u);
  }
  EXPECT_LT(lo, 0.01);
  EXPECT_GT(hi, 0.99);
}

TEST(Rng, BelowStaysInRange) {
  Xoshiro256 rng(9);
  for (int i = 0; i < 1000; ++i) ASSERT_LT(rng.below(17), 17u);
  EXPECT_EQ(rng.below(0), 0u);
}

TEST(Rng, SplitMixExpandsSeeds) {
  SplitMix64 sm(0);
  const std::uint64_t a = sm.next();
  const std::uint64_t b = sm.next();
  EXPECT_NE(a, b);
}

TEST(Table, PrintsAlignedColumns) {
  Table t({"name", "value"});
  t.row().add("alpha").add(1.5, 2);
  t.row().add("b").add(std::int64_t{42});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("1.50"), std::string::npos);
  EXPECT_NE(out.find("42"), std::string::npos);
}

TEST(Table, CsvEscapesCommas) {
  Table t({"a", "b"});
  t.row().add("x,y").add("plain");
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_NE(os.str().find("\"x,y\""), std::string::npos);
}

TEST(Table, FormatDoublePrecision) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(-0.5, 1), "-0.5");
}

TEST(Env, FallbacksWhenUnset) {
  EXPECT_EQ(env_string("STS_TEST_UNSET_VAR", "dflt"), "dflt");
  EXPECT_EQ(env_int("STS_TEST_UNSET_VAR", 7), 7);
  EXPECT_EQ(env_double("STS_TEST_UNSET_VAR", 0.5), 0.5);
}

TEST(Env, ParsesSetValues) {
  setenv("STS_TEST_VAR_I", "123", 1);
  setenv("STS_TEST_VAR_D", "2.5", 1);
  setenv("STS_TEST_VAR_S", "hello", 1);
  EXPECT_EQ(env_int("STS_TEST_VAR_I", 0), 123);
  EXPECT_EQ(env_double("STS_TEST_VAR_D", 0), 2.5);
  EXPECT_EQ(env_string("STS_TEST_VAR_S", ""), "hello");
  setenv("STS_TEST_VAR_I", "notanint", 1);
  EXPECT_EQ(env_int("STS_TEST_VAR_I", -1), -1);
}

TEST(Timer, MeasuresElapsedTime) {
  Timer t;
  const double a = t.seconds();
  EXPECT_GE(a, 0.0);
  t.reset();
  EXPECT_GE(t.ns(), 0);
  EXPECT_GT(now_ns(), 0);
}

} // namespace
} // namespace sts::support
