#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <numeric>
#include <thread>
#include <vector>

#include "flux/dataflow.hpp"
#include "support/error.hpp"
#include "support/fault.hpp"
#include "support/rng.hpp"

namespace sts::flux {
namespace {

Scheduler::Config cfg(unsigned threads, unsigned domains = 1,
                      bool numa = false) {
  return {.threads = threads, .numa_domains = domains, .numa_aware = numa};
}

TEST(Scheduler, RunsSubmittedTasks) {
  Scheduler s(cfg(2));
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    s.submit([&count] { count.fetch_add(1); });
  }
  s.wait_for_quiescence();
  EXPECT_EQ(count.load(), 100);
  EXPECT_EQ(s.stats().executed, 100u);
}

TEST(Scheduler, NestedSubmissionsComplete) {
  Scheduler s(cfg(2));
  std::atomic<int> count{0};
  s.submit([&] {
    for (int i = 0; i < 10; ++i) {
      s.submit([&] {
        count.fetch_add(1);
        s.submit([&] { count.fetch_add(1); });
      });
    }
  });
  s.wait_for_quiescence();
  EXPECT_EQ(count.load(), 20);
}

TEST(Scheduler, DomainHintsTargetDomains) {
  Scheduler s(cfg(4, 2, true));
  EXPECT_EQ(s.domain_count(), 2u);
  std::atomic<int> count{0};
  for (int i = 0; i < 50; ++i) {
    s.submit([&count] { count.fetch_add(1); }, i % 2);
  }
  s.wait_for_quiescence();
  EXPECT_EQ(count.load(), 50);
}

TEST(Scheduler, CurrentWorkerOnlyInsideWorkers) {
  Scheduler s(cfg(2));
  EXPECT_EQ(s.current_worker(), -1);
  std::atomic<int> seen{-2};
  s.submit([&] { seen = s.current_worker(); });
  s.wait_for_quiescence();
  EXPECT_GE(seen.load(), 0);
  EXPECT_LT(seen.load(), 2);
}

TEST(Future, PromiseDeliversValue) {
  promise<int> p;
  auto f = p.get_future();
  EXPECT_FALSE(f.is_ready());
  p.set_value(42);
  EXPECT_TRUE(f.is_ready());
  EXPECT_EQ(f.get(), 42);
}

TEST(Future, MakeReadyFuture) {
  auto f = make_ready_future();
  EXPECT_TRUE(f.is_ready());
  auto g = make_ready_future(3.5);
  EXPECT_EQ(g.get(), 3.5);
}

TEST(Future, SharedFutureMultipleReaders) {
  promise<int> p;
  shared_future<int> a = p.get_shared_future();
  shared_future<int> b = a;
  p.set_value(7);
  EXPECT_EQ(a.get(), 7);
  EXPECT_EQ(b.get(), 7);
}

TEST(Future, ContinuationFiresOnce) {
  promise<void> p;
  auto f = p.get_shared_future();
  std::atomic<int> fired{0};
  f.state()->add_continuation([&] { fired.fetch_add(1); });
  p.set_value();
  EXPECT_EQ(fired.load(), 1);
  // Late continuation on a ready future runs immediately.
  f.state()->add_continuation([&] { fired.fetch_add(1); });
  EXPECT_EQ(fired.load(), 2);
}

TEST(Async, ReturnsResult) {
  Scheduler s(cfg(2));
  auto f = async(s, [] { return std::string("hi"); });
  EXPECT_EQ(f.get(), "hi");
  s.wait_for_quiescence();
}

TEST(Async, PropagatesExceptions) {
  Scheduler s(cfg(2));
  auto f = async(s, []() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW((void)f.get(), std::runtime_error);
  // The scheduler latched the same error; the next quiescence wait
  // surfaces it once, then the scheduler is clean again.
  EXPECT_THROW(s.wait_for_quiescence(), std::runtime_error);
  s.wait_for_quiescence();
}

TEST(Dataflow, WaitsForAllDependencies) {
  Scheduler s(cfg(2));
  promise<void> p1;
  promise<void> p2;
  std::atomic<bool> ran{false};
  auto f = dataflow(s, unwrapping([&ran] { ran = true; }),
                    p1.get_shared_future(), p2.get_shared_future());
  EXPECT_FALSE(ran.load());
  p1.set_value();
  EXPECT_FALSE(ran.load());
  p2.set_value();
  f.get();
  EXPECT_TRUE(ran.load());
  s.wait_for_quiescence();
}

TEST(Dataflow, VectorOfFuturesAsDependency) {
  Scheduler s(cfg(2));
  std::vector<promise<void>> promises(8);
  std::vector<shared_future<void>> futs;
  for (auto& p : promises) futs.push_back(p.get_shared_future());
  std::atomic<bool> ran{false};
  auto f = dataflow(s, unwrapping([&ran] { ran = true; }), futs);
  for (std::size_t i = 0; i + 1 < promises.size(); ++i) {
    promises[i].set_value();
  }
  EXPECT_FALSE(ran.load());
  promises.back().set_value();
  f.get();
  EXPECT_TRUE(ran.load());
  s.wait_for_quiescence();
}

TEST(Dataflow, UnwrappingPassesValuesAndDropsVoids) {
  Scheduler s(cfg(2));
  auto vf = make_ready_future();
  auto iv = make_ready_future(5);
  auto f = dataflow(
      s, unwrapping([](int v, double d) { return v + static_cast<int>(d); }),
      vf, iv, 2.0);
  EXPECT_EQ(f.get(), 7);
  s.wait_for_quiescence();
}

TEST(Dataflow, SelfChainSerializesWrites) {
  Scheduler s(cfg(4));
  int value = 0; // unsynchronized on purpose: the chain must serialize
  shared_future<void> chain = make_ready_future();
  for (int i = 0; i < 200; ++i) {
    chain = dataflow(s, unwrapping([&value] { ++value; }), chain).share();
  }
  chain.get();
  s.wait_for_quiescence();
  EXPECT_EQ(value, 200);
}

TEST(WhenAll, ReadyWhenAllReady) {
  Scheduler s(cfg(2));
  std::vector<promise<void>> promises(4);
  std::vector<shared_future<void>> futs;
  for (auto& p : promises) futs.push_back(p.get_shared_future());
  auto all = when_all(s, futs);
  for (auto& p : promises) p.set_value();
  all.get();
  s.wait_for_quiescence();
}

/// Property test: a random dataflow DAG computed with flux must produce the
/// same values as a sequential evaluation.
TEST(Dataflow, RandomDagMatchesSerialEvaluation) {
  support::Xoshiro256 rng(123);
  for (int trial = 0; trial < 10; ++trial) {
    const int n = 30 + static_cast<int>(rng.below(40));
    // node value = 1 + sum of dependency values (mod large prime).
    std::vector<std::vector<int>> deps(static_cast<std::size_t>(n));
    for (int i = 1; i < n; ++i) {
      const int ndeps = static_cast<int>(rng.below(4));
      for (int d = 0; d < ndeps; ++d) {
        deps[static_cast<std::size_t>(i)].push_back(
            static_cast<int>(rng.below(static_cast<std::uint64_t>(i))));
      }
    }
    std::vector<std::int64_t> serial(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      std::int64_t v = 1;
      for (int d : deps[static_cast<std::size_t>(i)]) {
        v += serial[static_cast<std::size_t>(d)];
      }
      serial[static_cast<std::size_t>(i)] = v % 1000003;
    }

    Scheduler s(cfg(4));
    std::vector<std::int64_t> values(static_cast<std::size_t>(n), 0);
    std::vector<shared_future<void>> done(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      std::vector<shared_future<void>> my_deps;
      for (int d : deps[static_cast<std::size_t>(i)]) {
        my_deps.push_back(done[static_cast<std::size_t>(d)]);
      }
      auto body = [i, &values, deps_copy = deps[static_cast<std::size_t>(i)]] {
        std::int64_t v = 1;
        for (int d : deps_copy) v += values[static_cast<std::size_t>(d)];
        values[static_cast<std::size_t>(i)] = v % 1000003;
      };
      done[static_cast<std::size_t>(i)] =
          dataflow(s, unwrapping(body), std::move(my_deps)).share();
    }
    for (auto& f : done) f.get();
    s.wait_for_quiescence();
    ASSERT_EQ(values, serial) << "trial " << trial;
  }
}

TEST(Faults, MidChainErrorSkipsSuccessorsAndSurfacesOnce) {
  Scheduler s(cfg(2));
  std::atomic<bool> ran_a{false};
  std::atomic<bool> ran_c{false};
  auto a = dataflow(s, unwrapping([&] { ran_a = true; })).share();
  auto b = dataflow(s, unwrapping([]() -> void {
                      throw support::TaskError("spmv[1,1]", "injected");
                    }),
                    a)
               .share();
  auto c = dataflow(s, unwrapping([&] { ran_c = true; }), b).share();
  try {
    c.get();
    FAIL() << "expected TaskError";
  } catch (const support::TaskError& e) {
    EXPECT_EQ(e.task(), "spmv[1,1]");
  }
  EXPECT_TRUE(ran_a.load());
  EXPECT_FALSE(ran_c.load()); // the dependency's error was forwarded
  EXPECT_TRUE(s.cancelled());
  EXPECT_THROW(s.wait_for_quiescence(), support::TaskError);
  // Clean after the rethrow: the scheduler is reusable.
  EXPECT_FALSE(s.cancelled());
  std::atomic<int> count{0};
  for (int i = 0; i < 16; ++i) s.submit([&] { count.fetch_add(1); });
  s.wait_for_quiescence();
  EXPECT_EQ(count.load(), 16);
}

TEST(Faults, CancellationDropsQueuedTasks) {
  // One worker makes the schedule deterministic: the failing task enqueues
  // its successors, throws, and only then can the worker dequeue them.
  Scheduler s(cfg(1));
  std::atomic<int> ran{0};
  s.submit([&] {
    for (int i = 0; i < 64; ++i) s.submit([&] { ran.fetch_add(1); });
    throw std::runtime_error("abort the rest");
  });
  EXPECT_THROW(s.wait_for_quiescence(), std::runtime_error);
  EXPECT_EQ(ran.load(), 0);
  s.wait_for_quiescence(); // reusable and clean
}

TEST(Faults, InjectedFaultAtTaskSite) {
  Scheduler s(cfg(2));
  support::fault::ScopedFault f("flux:task:hit=3");
  for (int i = 0; i < 8; ++i) {
    s.submit([] {});
  }
  try {
    s.wait_for_quiescence();
    FAIL() << "expected fault::Injected";
  } catch (const support::fault::Injected& e) {
    EXPECT_EQ(e.site(), "flux:task");
  }
}

TEST(Faults, QuiescenceDeadlineReportsDiagnostics) {
  Scheduler s(cfg(2));
  std::mutex m;
  std::condition_variable cv;
  bool release = false;
  s.submit([&] {
    std::unique_lock<std::mutex> lock(m);
    cv.wait(lock, [&] { return release; });
  });
  try {
    s.wait_for_quiescence(std::chrono::milliseconds(100));
    FAIL() << "expected TimeoutError";
  } catch (const support::TimeoutError& e) {
    EXPECT_NE(std::string(e.what()).find("outstanding"), std::string::npos);
  }
  {
    std::lock_guard<std::mutex> lock(m);
    release = true;
  }
  cv.notify_all();
  s.wait_for_quiescence(std::chrono::seconds(5));
}

TEST(Scheduler, StealStatsAccumulate) {
  Scheduler s(cfg(4));
  std::atomic<int> count{0};
  // Submit chains from outside so some workers must steal.
  for (int i = 0; i < 400; ++i) {
    s.submit([&count] {
      volatile double x = 0;
      for (int k = 0; k < 1000; ++k) x = x + k;
      count.fetch_add(1);
    });
  }
  s.wait_for_quiescence();
  EXPECT_EQ(count.load(), 400);
  // steals is machine-dependent; just verify the counter is readable.
  EXPECT_GE(s.stats().steals, 0u);
}

TEST(Task, SmallClosureIsStoredInline) {
  int x = 0;
  Task small([&x] { ++x; });
  EXPECT_TRUE(static_cast<bool>(small));
  EXPECT_TRUE(small.inline_stored());
  small();
  EXPECT_EQ(x, 1);

  // Move transfers the closure and empties the source.
  Task moved(std::move(small));
  EXPECT_FALSE(static_cast<bool>(small)); // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(static_cast<bool>(moved));
  moved();
  EXPECT_EQ(x, 2);
}

TEST(Task, LargeClosureFallsBackToHeapAndDestroysOnce) {
  auto tracked = std::make_shared<int>(7);
  std::array<char, 2 * Task::kInlineSize> pad{};
  int sum = 0;
  {
    Task big([tracked, pad, &sum] { sum += *tracked + pad[0]; });
    EXPECT_FALSE(big.inline_stored());
    EXPECT_EQ(tracked.use_count(), 2);
    Task moved = std::move(big);
    EXPECT_EQ(tracked.use_count(), 2); // heap move relocates, no copy
    moved();
  }
  EXPECT_EQ(sum, 7);
  EXPECT_EQ(tracked.use_count(), 1); // closure destroyed exactly once
}

TEST(Scheduler, StressConcurrentSubmittersAndRecursiveSpawns) {
  // Hammers every queue path at once: external submissions (inboxes) from
  // several threads, domain-hinted submissions, and worker-local recursive
  // spawns (the lock-free ring), with 4 workers stealing from each other.
  Scheduler s(cfg(4, 2, true));
  std::atomic<int> count{0};
  constexpr int kSubmitters = 4;
  constexpr int kPerSubmitter = 250;
  std::vector<std::thread> submitters;
  submitters.reserve(kSubmitters);
  for (int sub = 0; sub < kSubmitters; ++sub) {
    submitters.emplace_back([&s, &count, sub] {
      for (int i = 0; i < kPerSubmitter; ++i) {
        const int hint = (i % 3 == 0) ? sub % 2 : -1;
        s.submit(
            [&s, &count] {
              count.fetch_add(1);
              // Worker-local child + grandchild: ring push/pop under
              // concurrent steals.
              s.submit([&s, &count] {
                count.fetch_add(1);
                s.submit([&count] { count.fetch_add(1); });
              });
            },
            hint);
      }
    });
  }
  for (std::thread& t : submitters) t.join();
  s.wait_for_quiescence();
  EXPECT_EQ(count.load(), kSubmitters * kPerSubmitter * 3);
  EXPECT_EQ(s.stats().executed,
            static_cast<std::uint64_t>(kSubmitters * kPerSubmitter * 3));
}

TEST(Scheduler, RingOverflowFallsBackToInbox) {
  // A single worker spawning more children than the ring holds must spill
  // into its inbox and still run everything (no drops, no deadlock).
  Scheduler s(cfg(1));
  std::atomic<int> count{0};
  const int n = static_cast<int>(Scheduler::kRingCapacity) + 500;
  s.submit([&s, &count, n] {
    for (int i = 0; i < n; ++i) {
      s.submit([&count] { count.fetch_add(1); });
    }
  });
  s.wait_for_quiescence();
  EXPECT_EQ(count.load(), n);
}

} // namespace
} // namespace sts::flux
