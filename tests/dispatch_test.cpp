// Tests for the concurrent job dispatcher (DESIGN.md §15): the two-level
// FairQueue (strict priority + deficit round robin) driven by a fake clock,
// the partition arithmetic against canned sysfs fixtures, and the Service's
// slot machinery — disjoint domain-aligned partitions, quotas, deadlines,
// and the elastic grant protocol — run in-process with an injected Machine
// so the tests describe multi-socket shapes even in a 1-CPU container.
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <fstream>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "support/error.hpp"
#include "support/fault.hpp"
#include "support/topology.hpp"
#include "svc/dispatch/partition.hpp"
#include "svc/dispatch/queue.hpp"
#include "svc/service.hpp"

namespace sts {
namespace {

using namespace std::chrono_literals;
using support::topo::Machine;
using svc::dispatch::Class;
using svc::dispatch::FairQueue;
using svc::dispatch::Item;
using svc::dispatch::Policy;

// ---------------------------------------------------------------- fixtures

/// Canned sysfs tree rooted at a fresh /tmp directory; removed on scope
/// exit (same shape as topology_test's fixture — duplicated on purpose so
/// each test binary stays self-contained).
class SysFixture {
public:
  SysFixture() {
    char tmpl[] = "/tmp/sts-disp-XXXXXX";
    root_ = ::mkdtemp(tmpl);
    EXPECT_FALSE(root_.empty());
  }
  ~SysFixture() {
    for (auto it = files_.rbegin(); it != files_.rend(); ++it) {
      ::unlink(it->c_str());
    }
    for (auto it = dirs_.rbegin(); it != dirs_.rend(); ++it) {
      ::rmdir(it->c_str());
    }
    ::rmdir(root_.c_str());
  }

  [[nodiscard]] const std::string& root() const { return root_; }

  void write(const std::string& rel, const std::string& contents) {
    std::string dir = root_;
    std::size_t pos = 0;
    while (true) {
      const std::size_t slash = rel.find('/', pos);
      if (slash == std::string::npos) break;
      dir += "/" + rel.substr(pos, slash - pos);
      if (::mkdir(dir.c_str(), 0755) == 0) dirs_.push_back(dir);
      pos = slash + 1;
    }
    const std::string path = root_ + "/" + rel;
    std::ofstream f(path);
    f << contents << "\n";
    files_.push_back(path);
  }

private:
  std::string root_;
  std::vector<std::string> dirs_;
  std::vector<std::string> files_;
};

/// 2 nodes x 4 CPUs: node0 = cpus 0-3, node1 = cpus 4-7.
Machine two_node_machine(SysFixture& fx) {
  fx.write("devices/system/cpu/online", "0-7");
  fx.write("devices/system/node/node0/cpulist", "0-3");
  fx.write("devices/system/node/node1/cpulist", "4-7");
  return support::topo::detect(fx.root());
}

Item item(std::uint64_t id, Class cls, unsigned weight = 1,
          const std::string& client = "") {
  Item it;
  it.id = id;
  it.cls = cls;
  it.weight = weight;
  it.client = client;
  return it;
}

/// Pops everything, returning the client key sequence.
std::vector<std::string> pop_clients(FairQueue& q) {
  std::vector<std::string> order;
  Item out;
  while (q.pop(&out)) order.push_back(out.client);
  return order;
}

// ------------------------------------------------------- policy parsing --

TEST(DispatchPolicy, ParseAndRenderRoundTrip) {
  EXPECT_EQ(svc::dispatch::parse_policy("fifo"), Policy::kFifo);
  EXPECT_EQ(svc::dispatch::parse_policy("fair"), Policy::kFair);
  EXPECT_THROW((void)svc::dispatch::parse_policy("lifo"), support::Error);
  EXPECT_STREQ(svc::dispatch::to_string(Policy::kFair), "fair");
  EXPECT_EQ(svc::dispatch::parse_class("interactive"), Class::kInteractive);
  EXPECT_EQ(svc::dispatch::parse_class("batch"), Class::kBatch);
  EXPECT_THROW((void)svc::dispatch::parse_class("best-effort"),
               support::Error);
  EXPECT_STREQ(svc::dispatch::to_string(Class::kInteractive), "interactive");
}

// ------------------------------------------------------------ FairQueue --

TEST(FairQueueTest, FifoIgnoresClassAndWeightButCountsDepths) {
  FairQueue q(Policy::kFifo);
  q.push(item(1, Class::kBatch, 1, "a"));
  q.push(item(2, Class::kInteractive, 99, "b"));
  q.push(item(3, Class::kBatch, 1, "a"));
  EXPECT_EQ(q.size(), 3u);
  // Depths still report real classes so stats stay honest under kFifo.
  EXPECT_EQ(q.depth(Class::kInteractive), 1u);
  EXPECT_EQ(q.depth(Class::kBatch), 2u);

  Item out;
  ASSERT_TRUE(q.pop(&out));
  EXPECT_EQ(out.id, 1u); // arrival order, not class order
  ASSERT_TRUE(q.pop(&out));
  EXPECT_EQ(out.id, 2u);
  ASSERT_TRUE(q.pop(&out));
  EXPECT_EQ(out.id, 3u);
  EXPECT_FALSE(q.pop(&out));
  EXPECT_EQ(q.depth(Class::kBatch), 0u);
}

TEST(FairQueueTest, StrictPriorityInteractiveDrainsFirst) {
  FairQueue q(Policy::kFair);
  q.push(item(1, Class::kBatch));
  q.push(item(2, Class::kBatch));
  q.push(item(3, Class::kInteractive));

  Item out;
  ASSERT_TRUE(q.pop(&out));
  EXPECT_EQ(out.id, 3u); // pushed last, popped first

  // An interactive arrival mid-stream still jumps every queued batch job.
  q.push(item(4, Class::kInteractive));
  ASSERT_TRUE(q.pop(&out));
  EXPECT_EQ(out.id, 4u);
  ASSERT_TRUE(q.pop(&out));
  EXPECT_EQ(out.id, 1u);
  ASSERT_TRUE(q.pop(&out));
  EXPECT_EQ(out.id, 2u);
}

TEST(FairQueueTest, DrrGrantsFollowWeights) {
  // A (weight 3) vs B (weight 1), same class: the DRR cursor gives A three
  // grants per visit and B one, so the steady-state pattern is A,A,A,B.
  FairQueue q(Policy::kFair);
  for (std::uint64_t i = 0; i < 6; ++i) q.push(item(10 + i, Class::kBatch, 3, "A"));
  for (std::uint64_t i = 0; i < 2; ++i) q.push(item(20 + i, Class::kBatch, 1, "B"));

  const std::vector<std::string> order = pop_clients(q);
  const std::vector<std::string> expect = {"A", "A", "A", "B",
                                           "A", "A", "A", "B"};
  EXPECT_EQ(order, expect);
}

TEST(FairQueueTest, WeightOneClientIsNeverStarvedBesideWeightSixteen) {
  FairQueue q(Policy::kFair);
  for (std::uint64_t i = 0; i < 64; ++i) {
    q.push(item(100 + i, Class::kBatch, 16, "heavy"));
  }
  for (std::uint64_t i = 0; i < 4; ++i) {
    q.push(item(200 + i, Class::kBatch, 1, "light"));
  }

  // Starvation-freedom: in every window of 17 consecutive grants while the
  // light client has work queued, it appears at least once.
  std::vector<std::string> order = pop_clients(q);
  std::size_t since_light = 0;
  std::size_t light_seen = 0;
  for (const std::string& c : order) {
    if (light_seen == 4) break; // light queue drained
    if (c == "light") {
      ++light_seen;
      since_light = 0;
    } else {
      ++since_light;
      EXPECT_LE(since_light, 16u) << "light client starved";
    }
  }
  EXPECT_EQ(light_seen, 4u);
}

TEST(FairQueueTest, DrainedClientForfeitsCreditAndRejoinsAtTheBack) {
  // A huge-weight client that drains forfeits its unspent quantum and, on
  // re-arrival, joins the back of the ring: B (weight 1) still gets its one
  // grant per round, so the tail alternates instead of A monopolizing.
  FairQueue q(Policy::kFair);
  q.push(item(1, Class::kBatch, 100, "A"));
  q.push(item(2, Class::kBatch, 1, "B"));
  q.push(item(3, Class::kBatch, 1, "B"));

  Item out;
  ASSERT_TRUE(q.pop(&out));
  EXPECT_EQ(out.client, "A"); // A drains with 99 credit left — forfeited

  q.push(item(4, Class::kBatch, 100, "A")); // re-activation, back of ring
  ASSERT_TRUE(q.pop(&out));
  EXPECT_EQ(out.client, "B"); // B's cursor turn comes first
  ASSERT_TRUE(q.pop(&out));
  EXPECT_EQ(out.client, "A"); // B out of credit for this round -> rotate
  ASSERT_TRUE(q.pop(&out));
  EXPECT_EQ(out.client, "B");
  EXPECT_TRUE(q.empty());
}

TEST(FairQueueTest, RemoveDropsPendingJobsById) {
  FairQueue q(Policy::kFair);
  q.push(item(1, Class::kBatch, 1, "a"));
  q.push(item(2, Class::kBatch, 1, "a"));
  q.push(item(3, Class::kInteractive, 1, "b"));

  EXPECT_TRUE(q.remove(2));
  EXPECT_FALSE(q.remove(2)); // already gone
  EXPECT_FALSE(q.remove(42));
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.depth(Class::kBatch), 1u);

  Item out;
  ASSERT_TRUE(q.pop(&out));
  EXPECT_EQ(out.id, 3u);
  ASSERT_TRUE(q.pop(&out));
  EXPECT_EQ(out.id, 1u); // 2 was removed, not reordered
  EXPECT_FALSE(q.pop(&out));
}

TEST(FairQueueTest, InjectedClockStampsEnqueueTimes) {
  std::int64_t now = 42;
  FairQueue q(Policy::kFair, [&now] { return now; });
  q.push(item(1, Class::kBatch));
  now = 1000;
  q.push(item(2, Class::kBatch));
  Item pre = item(3, Class::kBatch);
  pre.enqueue_ns = 7; // pre-stamped (journal recovery) wins over the clock
  q.push(pre);

  const std::vector<Item> snap = q.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  std::vector<std::int64_t> stamps;
  for (const Item& it : snap) stamps.push_back(it.enqueue_ns);
  std::sort(stamps.begin(), stamps.end());
  EXPECT_EQ(stamps, (std::vector<std::int64_t>{7, 42, 1000}));
}

TEST(FairQueueTest, SnapshotIsClassMajor) {
  FairQueue q(Policy::kFair);
  q.push(item(1, Class::kBatch, 1, "a"));
  q.push(item(2, Class::kInteractive, 1, "b"));
  q.push(item(3, Class::kBatch, 1, "a"));

  const std::vector<Item> snap = q.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].cls, Class::kInteractive);
  EXPECT_EQ(snap[1].cls, Class::kBatch);
  EXPECT_EQ(snap[2].cls, Class::kBatch);
  EXPECT_EQ(snap[1].id, 1u); // per-client FIFO preserved
  EXPECT_EQ(snap[2].id, 3u);
}

// ------------------------------------------------------- partition_cpus --

TEST(PartitionCpus, TwoNodesSplitOnTheNodeBoundary) {
  SysFixture fx;
  const Machine m = two_node_machine(fx);
  ASSERT_EQ(m.node_count(), 2u);

  const auto one = support::topo::partition_cpus(m, 1);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));

  const auto two = support::topo::partition_cpus(m, 2);
  ASSERT_EQ(two.size(), 2u);
  EXPECT_EQ(two[0], (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(two[1], (std::vector<int>{4, 5, 6, 7}));
}

TEST(PartitionCpus, MorePartsThanNodesSubdivideWithoutStraddling) {
  SysFixture fx;
  const Machine m = two_node_machine(fx);

  const auto four = support::topo::partition_cpus(m, 4);
  ASSERT_EQ(four.size(), 4u);
  EXPECT_EQ(four[0], (std::vector<int>{0, 1}));
  EXPECT_EQ(four[1], (std::vector<int>{2, 3}));
  EXPECT_EQ(four[2], (std::vector<int>{4, 5}));
  EXPECT_EQ(four[3], (std::vector<int>{6, 7}));

  // Odd counts: every node still contributes whole chunks of itself; no
  // slice mixes CPUs from both nodes.
  const auto three = support::topo::partition_cpus(m, 3);
  ASSERT_EQ(three.size(), 3u);
  std::size_t total = 0;
  for (const auto& slice : three) {
    ASSERT_FALSE(slice.empty());
    total += slice.size();
    const bool node0 = slice.front() <= 3;
    for (const int c : slice) {
      EXPECT_EQ(c <= 3, node0) << "slice straddles the node boundary";
    }
  }
  EXPECT_EQ(total, 8u);
}

TEST(PartitionCpus, PartsClampToCpuCount) {
  SysFixture fx;
  const Machine m = two_node_machine(fx);

  const auto many = support::topo::partition_cpus(m, 100);
  ASSERT_EQ(many.size(), 8u); // clamped to cpu_count
  for (const auto& slice : many) EXPECT_EQ(slice.size(), 1u);

  const auto zero = support::topo::partition_cpus(m, 0);
  ASSERT_EQ(zero.size(), 1u); // clamped up to 1
  EXPECT_EQ(zero[0].size(), 8u);
}

TEST(PartitionCpus, OfflineCpuShrinksItsNodeSlice) {
  // cpu 3 is listed in node0's cpulist but offline: detection drops it, and
  // the carve balances the remaining 3+4 CPUs on the node boundary.
  SysFixture fx;
  fx.write("devices/system/cpu/online", "0-2,4-7");
  fx.write("devices/system/node/node0/cpulist", "0-3");
  fx.write("devices/system/node/node1/cpulist", "4-7");
  const Machine m = support::topo::detect(fx.root());
  ASSERT_EQ(m.cpu_count(), 7u);

  const auto two = support::topo::partition_cpus(m, 2);
  ASSERT_EQ(two.size(), 2u);
  EXPECT_EQ(two[0], (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(two[1], (std::vector<int>{4, 5, 6, 7}));
}

TEST(PartitionCpus, CpulessMemoryOnlyNodeIsSkipped) {
  // node1 is a memory-only node (empty cpulist, as CXL/HBM nodes report):
  // the carve sees two CPU-bearing nodes and splits between them.
  SysFixture fx;
  fx.write("devices/system/cpu/online", "0-7");
  fx.write("devices/system/node/node0/cpulist", "0-3");
  fx.write("devices/system/node/node1/cpulist", "");
  fx.write("devices/system/node/node2/cpulist", "4-7");
  const Machine m = support::topo::detect(fx.root());
  ASSERT_EQ(m.node_count(), 2u);

  const auto two = support::topo::partition_cpus(m, 2);
  ASSERT_EQ(two.size(), 2u);
  EXPECT_EQ(two[0], (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(two[1], (std::vector<int>{4, 5, 6, 7}));
}

TEST(PartitionCpus, UnevenNodesBalanceByCpuCount) {
  // 3 nodes x 4 CPUs into 2 slices: the cut lands after node1 (8 >= 6),
  // never splitting a node.
  SysFixture fx;
  fx.write("devices/system/cpu/online", "0-11");
  fx.write("devices/system/node/node0/cpulist", "0-3");
  fx.write("devices/system/node/node1/cpulist", "4-7");
  fx.write("devices/system/node/node2/cpulist", "8-11");
  const Machine m = support::topo::detect(fx.root());

  const auto two = support::topo::partition_cpus(m, 2);
  ASSERT_EQ(two.size(), 2u);
  EXPECT_EQ(two[0], (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
  EXPECT_EQ(two[1], (std::vector<int>{8, 9, 10, 11}));
}

// ----------------------------------------------------------------- carve --

TEST(Carve, AnnotatesSlotIndicesAndDomains) {
  SysFixture fx;
  const Machine m = two_node_machine(fx);

  const auto parts = svc::dispatch::carve(m, 2);
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[0].slot, 0u);
  EXPECT_EQ(parts[1].slot, 1u);
  EXPECT_EQ(parts[0].domains, (std::vector<int>{0}));
  EXPECT_EQ(parts[1].domains, (std::vector<int>{1}));
  EXPECT_EQ(parts[0].cpulist(), "0-3");
  EXPECT_EQ(parts[1].cpulist(), "4-7");
}

TEST(Carve, CpulistRendersRunsAndSingles) {
  svc::dispatch::Partition p;
  p.cpus = {0, 1, 2, 4};
  EXPECT_EQ(p.cpulist(), "0-2,4");
  p.cpus = {5};
  EXPECT_EQ(p.cpulist(), "5");
}

// ------------------------------------------------------ service dispatch --

svc::RunSpec flux_spec(int iterations = 5) {
  svc::RunSpec spec;
  spec.suite_name = "inline_1";
  spec.scale = 0.02;
  spec.solver = svc::SolverKind::kLanczos;
  spec.version = solver::Version::kFlux;
  spec.iterations = iterations;
  spec.nev = 4;
  spec.block = 64;
  spec.threads = 0; // partition-sized pool
  return spec;
}

/// LOBPCG/flux with an unreachable tolerance: runs until cancelled, hits an
/// iteration boundary (= resize_poll) constantly. timeout_sec is a watchdog
/// backstop against test hangs.
svc::RunSpec endless_flux_spec() {
  svc::RunSpec spec = flux_spec();
  spec.solver = svc::SolverKind::kLobpcg;
  spec.iterations = 2000000;
  spec.tolerance = 1e-300;
  spec.timeout_sec = 60.0;
  return spec;
}

svc::Service::Config dispatch_config(const Machine* machine, unsigned slots,
                                     std::size_t queue_capacity = 16) {
  svc::Service::Config config;
  config.queue_capacity = queue_capacity;
  config.threads = 0; // per-job width = partition size (enables growth)
  config.slots = slots;
  config.machine = machine;
  return config;
}

void wait_running(svc::Service& service, std::uint64_t id) {
  for (int i = 0; i < 600; ++i) {
    const svc::JobInfo info = service.status(id);
    if (info.state == svc::JobState::kRunning) return;
    ASSERT_FALSE(info.terminal())
        << "job terminal before RUNNING was seen: " << info.error;
    std::this_thread::sleep_for(10ms);
  }
  FAIL() << "job never entered RUNNING";
}

TEST(Dispatcher, SlotsRunOnDisjointDomainAlignedPartitions) {
  SysFixture fx;
  const Machine m = two_node_machine(fx);
  svc::Service service(dispatch_config(&m, 4));

  // The carve: 4 slots over 2 nodes -> 2-CPU slices, one domain each,
  // pairwise disjoint.
  const auto& parts = service.partitions();
  ASSERT_EQ(parts.size(), 4u);
  std::set<int> seen;
  for (const auto& p : parts) {
    EXPECT_EQ(p.cpus.size(), 2u);
    EXPECT_EQ(p.domains.size(), 1u) << "partition straddles NUMA domains";
    for (const int c : p.cpus) {
      EXPECT_TRUE(seen.insert(c).second) << "cpu " << c << " shared";
    }
  }
  EXPECT_EQ(seen.size(), 8u);

  // Each job runs on its slot's 2-CPU, single-domain pool: two workers and
  // no cross-domain steals, which is the whole point of the carve. The
  // max_workers quota pins the pool at the partition width so an early
  // finisher's slot cannot lend and widen a sibling mid-test (elastic
  // growth has its own coverage below).
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 4; ++i) {
    svc::RunSpec spec = flux_spec();
    spec.max_workers = 2;
    const auto out = service.submit(spec);
    ASSERT_TRUE(out.accepted);
    ids.push_back(out.id);
  }
  for (const std::uint64_t id : ids) {
    const svc::JobInfo info = service.wait(id, 60s);
    ASSERT_EQ(info.state, svc::JobState::kDone) << info.error;
    const svc::wire::Json flux = info.summary.get("flux");
    ASSERT_FALSE(flux.is_null());
    EXPECT_EQ(flux.get("workers").as_int(), 2);
    EXPECT_EQ(flux.get("domains").as_int(), 1);
    EXPECT_EQ(flux.get("steals_remote").as_int(), 0);
  }
}

TEST(Dispatcher, InteractiveJumpsAheadOfQueuedBatch) {
  svc::Service service(dispatch_config(nullptr, 1));

  const auto blocker = service.submit(endless_flux_spec());
  ASSERT_TRUE(blocker.accepted);
  wait_running(service, blocker.id);

  std::vector<std::uint64_t> batch_ids;
  for (int i = 0; i < 3; ++i) {
    const auto out = service.submit(flux_spec());
    ASSERT_TRUE(out.accepted);
    batch_ids.push_back(out.id);
  }
  svc::RunSpec urgent = endless_flux_spec();
  urgent.priority = "interactive";
  const auto inter = service.submit(urgent);
  ASSERT_TRUE(inter.accepted);

  // Free the slot: the interactive job must be popped ahead of all three
  // batch jobs that were queued before it.
  EXPECT_TRUE(service.cancel(blocker.id));
  wait_running(service, inter.id);
  for (const std::uint64_t id : batch_ids) {
    EXPECT_EQ(service.status(id).state, svc::JobState::kPending)
        << "batch job overtook the interactive one";
  }
  EXPECT_TRUE(service.cancel(inter.id));
  // The destructor drains the remaining batch jobs.
}

TEST(Dispatcher, StatsAndQueueSnapshotExposeDispatchState) {
  svc::Service service(dispatch_config(nullptr, 1));

  const auto blocker = service.submit(endless_flux_spec());
  ASSERT_TRUE(blocker.accepted);
  wait_running(service, blocker.id);
  svc::RunSpec urgent = flux_spec();
  urgent.priority = "interactive";
  urgent.weight = 4;
  urgent.client_key = "tenant-a/req-1";
  const auto qi = service.submit(urgent);
  const auto qb = service.submit(flux_spec());
  ASSERT_TRUE(qi.accepted);
  ASSERT_TRUE(qb.accepted);

  const svc::ServiceStats stats = service.stats();
  EXPECT_EQ(stats.dispatch.slots, 1u);
  EXPECT_EQ(stats.dispatch.policy, "fair");
  EXPECT_EQ(stats.dispatch.running_jobs, 1u);
  EXPECT_EQ(stats.dispatch.depth_interactive, 1u);
  EXPECT_EQ(stats.dispatch.depth_batch, 1u);
  EXPECT_EQ(stats.queue_depth, 2u);

  const svc::wire::Json snap = service.queue_snapshot();
  EXPECT_EQ(snap.get("policy").as_string(), "fair");
  const auto& parts = snap.get("partitions").items();
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(static_cast<std::uint64_t>(parts[0].get("job").as_int()),
            blocker.id);
  const auto& running = snap.get("running").items();
  ASSERT_EQ(running.size(), 1u);
  EXPECT_EQ(running[0].get("class").as_string(), "batch");
  const auto& pending = snap.get("pending").items();
  ASSERT_EQ(pending.size(), 2u);
  // Class-major: the interactive job leads, carrying its fairness identity
  // (client key prefix before '/').
  EXPECT_EQ(pending[0].get("class").as_string(), "interactive");
  EXPECT_EQ(pending[0].get("weight").as_int(), 4);
  EXPECT_EQ(pending[0].get("client").as_string(), "tenant-a");
  EXPECT_GE(pending[0].get("waiting_seconds").as_number(), 0.0);

  EXPECT_TRUE(service.cancel(blocker.id));
}

TEST(Dispatcher, QueueFullRejectionCarriesDepthAndCapacity) {
  svc::Service service(dispatch_config(nullptr, 1, /*queue_capacity=*/1));

  const auto running = service.submit(endless_flux_spec());
  ASSERT_TRUE(running.accepted);
  wait_running(service, running.id);
  const auto queued = service.submit(flux_spec());
  ASSERT_TRUE(queued.accepted);

  const auto rejected = service.submit(flux_spec());
  EXPECT_FALSE(rejected.accepted);
  EXPECT_EQ(rejected.error, "queue_full");
  EXPECT_EQ(rejected.queue_depth, 1u);
  EXPECT_EQ(rejected.queue_capacity, 1u);

  EXPECT_TRUE(service.cancel(running.id));
}

TEST(Dispatcher, MaxWorkersQuotaCapsThePoolWidth) {
  SysFixture fx;
  const Machine m = two_node_machine(fx);
  svc::Service service(dispatch_config(&m, 1)); // one 8-CPU partition

  svc::RunSpec spec = flux_spec();
  spec.max_workers = 3;
  const auto out = service.submit(spec);
  ASSERT_TRUE(out.accepted);
  const svc::JobInfo info = service.wait(out.id, 60s);
  ASSERT_EQ(info.state, svc::JobState::kDone) << info.error;
  EXPECT_EQ(info.summary.get("flux").get("workers").as_int(), 3);
}

TEST(Dispatcher, MemQuotaFailsAnOversizedPlan) {
  svc::Service service(dispatch_config(nullptr, 1));

  svc::RunSpec spec = flux_spec();
  spec.max_mem_bytes = 1; // no real plan fits in one byte
  const auto out = service.submit(spec);
  ASSERT_TRUE(out.accepted);
  const svc::JobInfo info = service.wait(out.id, 60s);
  EXPECT_EQ(info.state, svc::JobState::kFailed);
  EXPECT_NE(info.error.find("quota"), std::string::npos) << info.error;
}

TEST(Dispatcher, DeadlineExpiredInQueueCancelsBeforeStart) {
  svc::Service service(dispatch_config(nullptr, 1));

  const auto blocker = service.submit(endless_flux_spec());
  ASSERT_TRUE(blocker.accepted);
  wait_running(service, blocker.id);

  svc::RunSpec spec = flux_spec();
  spec.deadline_ms = 50;
  const auto doomed = service.submit(spec);
  ASSERT_TRUE(doomed.accepted);

  // Let the deadline lapse while the job is still queued, then free the
  // slot: the pop must cancel, not run.
  std::this_thread::sleep_for(200ms);
  EXPECT_TRUE(service.cancel(blocker.id));
  const svc::JobInfo info = service.wait(doomed.id, 60s);
  EXPECT_EQ(info.state, svc::JobState::kCancelled);
  EXPECT_NE(info.error.find("deadline"), std::string::npos) << info.error;
}

TEST(Dispatcher, IdleSlotLendsItsPartitionToAGrowableJob) {
  SysFixture fx;
  const Machine m = two_node_machine(fx);
  svc::Service service(dispatch_config(&m, 2));

  // One endless flux job on slot 0; slot 1 idles and must offer its 4 CPUs,
  // which the job's resize_poll applies at an iteration boundary.
  const auto out = service.submit(endless_flux_spec());
  ASSERT_TRUE(out.accepted);
  wait_running(service, out.id);

  bool applied = false;
  for (int i = 0; i < 600 && !applied; ++i) {
    applied = service.stats().dispatch.grants_applied >= 1;
    if (!applied) std::this_thread::sleep_for(10ms);
  }
  ASSERT_TRUE(applied) << "idle slot never lent its partition";

  const svc::wire::Json snap = service.queue_snapshot();
  const auto& parts = snap.get("partitions").items();
  ASSERT_EQ(parts.size(), 2u);
  bool lent_seen = false;
  for (const auto& p : parts) {
    if (!p.has("lent_to")) continue;
    lent_seen = true;
    EXPECT_EQ(static_cast<std::uint64_t>(p.get("lent_to").as_int()), out.id);
    EXPECT_TRUE(p.get("lent_applied").as_bool());
  }
  EXPECT_TRUE(lent_seen);
  const auto& running = snap.get("running").items();
  ASSERT_EQ(running.size(), 1u);
  EXPECT_GT(running[0].get("workers").as_int(), 4); // grew past its slice

  // Terminal job -> lender reclaimed.
  EXPECT_TRUE(service.cancel(out.id));
  const svc::JobInfo info = service.wait(out.id, 60s);
  EXPECT_TRUE(info.terminal());
  const svc::wire::Json after = service.queue_snapshot();
  for (const auto& p : after.get("partitions").items()) {
    EXPECT_FALSE(p.has("lent_to")) << "lender not reclaimed";
  }
}

TEST(Dispatcher, GrantFaultKillsTheJobAndTheLenderIsReGranted) {
  SysFixture fx;
  const Machine m = two_node_machine(fx);
  svc::Service service(dispatch_config(&m, 2));

  // First grant application throws (chaos: die mid-resize). The job fails,
  // the lender must be restored...
  support::fault::arm("svc:grant:hit=1:kind=throw");
  const auto doomed = service.submit(endless_flux_spec());
  ASSERT_TRUE(doomed.accepted);
  const svc::JobInfo failed = service.wait(doomed.id, 60s);
  support::fault::clear();
  EXPECT_EQ(failed.state, svc::JobState::kFailed);
  EXPECT_NE(failed.error.find("svc:grant"), std::string::npos)
      << failed.error;
  svc::ServiceStats stats = service.stats();
  EXPECT_GE(stats.dispatch.grants_revoked, 1u);
  EXPECT_EQ(stats.dispatch.grants_applied, 0u);
  const svc::wire::Json snap = service.queue_snapshot();
  for (const auto& p : snap.get("partitions").items()) {
    EXPECT_FALSE(p.has("lent_to")) << "lender leaked by the failed grant";
  }

  // ...and re-grantable: the next growable job gets the same partition.
  const auto next = service.submit(endless_flux_spec());
  ASSERT_TRUE(next.accepted);
  wait_running(service, next.id);
  bool regranted = false;
  for (int i = 0; i < 600 && !regranted; ++i) {
    regranted = service.stats().dispatch.grants_applied >= 1;
    if (!regranted) std::this_thread::sleep_for(10ms);
  }
  EXPECT_TRUE(regranted) << "partition was not re-granted after the fault";
  EXPECT_TRUE(service.cancel(next.id));
}

} // namespace
} // namespace sts
