// Chaos harness (DESIGN.md §12): kill the real stsd daemon mid-job — by
// SIGKILL and by an armed kind=crash fault — then restart it on the same
// journal and checkpoint directory and assert the interrupted job is
// re-admitted, resumed from its checkpoint, and finishes with the same
// eigenvalue estimates as an uninterrupted run. These tests carry the ctest
// label "chaos" (run with `ctest -L chaos`).
#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <cmath>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "proc_util.hpp"
#include "support/error.hpp"
#include "svc/client.hpp"
#include "svc/journal.hpp"
#include "svc/run_spec.hpp"
#include "svc/wire.hpp"

namespace sts {
namespace {

using namespace std::chrono_literals;

std::string tmp_path(const char* tag, const char* suffix) {
  return "/tmp/sts-chaos-" + std::string(tag) + "-" +
         std::to_string(::getpid()) + suffix;
}

bool file_exists(const std::string& path) {
  return ::access(path.c_str(), F_OK) == 0;
}

/// A deterministic, long-enough job: the ds version reduces per-piece
/// partials in a fixed order, so at a fixed thread count an uninterrupted
/// run and a checkpoint-resumed run produce bit-identical Ritz values.
svc::RunSpec chaos_spec() {
  svc::RunSpec spec;
  spec.suite_name = "inline_1";
  spec.scale = 0.05;
  spec.solver = svc::SolverKind::kLanczos;
  spec.version = solver::Version::kDs;
  spec.iterations = 250;
  spec.block = 64;
  spec.threads = 2;
  return spec;
}

class ChaosDaemon {
public:
  ChaosDaemon(const std::string& socket_path, const std::string& journal,
              const std::string& ckpt_dir,
              const std::vector<std::string>& extra_env = {})
      : socket_path_(socket_path) {
    std::vector<std::string> argv = {STSD_BIN, "--socket", socket_path,
                                     "--threads", "2"};
    if (!journal.empty()) {
      argv.insert(argv.end(), {"--journal", journal});
    }
    if (!ckpt_dir.empty()) {
      argv.insert(argv.end(), {"--ckpt-dir", ckpt_dir});
    }
    std::vector<std::string> env = {"STS_CKPT_EVERY=3"};
    env.insert(env.end(), extra_env.begin(), extra_env.end());
    child_ = testutil::spawn(argv, env, "/tmp/sts-chaos-test-stsd.log");
  }

  ~ChaosDaemon() {
    if (!reaped_) {
      child_.signal(SIGKILL);
      child_.wait();
    }
  }

  [[nodiscard]] bool wait_ready() const {
    for (int i = 0; i < 200; ++i) {
      try {
        svc::Client probe(socket_path_);
        if (probe.ping()) return true;
      } catch (const support::Error&) {
      }
      std::this_thread::sleep_for(50ms);
    }
    return false;
  }

  void kill_hard() {
    child_.signal(SIGKILL);
    last_exit_ = child_.wait();
    reaped_ = true;
  }

  /// Blocks until the child dies on its own (an armed crash fault).
  int reap() {
    last_exit_ = child_.wait();
    reaped_ = true;
    return last_exit_;
  }

  int terminate_and_wait() {
    child_.signal(SIGTERM);
    last_exit_ = child_.wait();
    reaped_ = true;
    return last_exit_;
  }

  const std::string socket_path_;

private:
  testutil::ChildProcess child_;
  bool reaped_ = false;
  int last_exit_ = 0;
};

std::vector<double> ritz_extremes(const svc::wire::Json& job) {
  std::vector<double> out;
  const svc::wire::Json& summary = job.get("summary");
  for (const auto& v : summary.get("ritz_extremes").items()) {
    out.push_back(v.as_number());
  }
  return out;
}

/// Reference eigenvalues from an uninterrupted run on a clean daemon.
std::vector<double> reference_extremes(const char* tag) {
  ChaosDaemon daemon(tmp_path(tag, "-ref.sock"), "", "");
  EXPECT_TRUE(daemon.wait_ready());
  svc::Client client(daemon.socket_path_);
  const auto out = client.submit(chaos_spec());
  EXPECT_TRUE(out.accepted);
  const svc::wire::Json job = client.result(out.id);
  EXPECT_EQ(job.string_or("state", ""), "DONE")
      << job.string_or("error", "");
  EXPECT_EQ(daemon.terminate_and_wait(), 0);
  return ritz_extremes(job);
}

TEST(Chaos, SigkillMidJobThenRestartResumesAndMatches) {
  const std::vector<double> reference = reference_extremes("sigkill");
  ASSERT_EQ(reference.size(), 2u);

  const std::string socket = tmp_path("sigkill", ".sock");
  const std::string journal = tmp_path("sigkill", ".journal");
  const std::string ckpt_dir = tmp_path("sigkill", "-ckpt");
  ::unlink(journal.c_str());

  std::uint64_t id = 0;
  {
    // Probabilistic delay faults stretch the solve so the kill lands midway;
    // delays change timing, never arithmetic.
    ChaosDaemon daemon(socket, journal, ckpt_dir,
                       {"STS_FAULT=spmv_block:kind=delay:delay_ms=2"
                        ":prob=0.3:seed=11"});
    ASSERT_TRUE(daemon.wait_ready());
    svc::Client client(daemon.socket_path_);
    const auto out = client.submit(chaos_spec());
    ASSERT_TRUE(out.accepted);
    id = out.id;

    // Wait until the job is RUNNING and has committed a checkpoint, then
    // kill the daemon without any chance to clean up.
    const std::string ckpt = ckpt_dir + "/job-" + std::to_string(id) +
                             ".ckpt";
    bool armed = false;
    for (int i = 0; i < 3000; ++i) {
      const svc::wire::Json job = client.status(id);
      ASSERT_NE(job.string_or("state", ""), "FAILED")
          << job.string_or("error", "");
      if (job.string_or("state", "") == "RUNNING" && file_exists(ckpt)) {
        armed = true;
        break;
      }
      ASSERT_NE(job.string_or("state", ""), "DONE")
          << "job finished before the kill could land";
      std::this_thread::sleep_for(10ms);
    }
    ASSERT_TRUE(armed) << "job never reached RUNNING with a checkpoint";
    daemon.kill_hard();
  }

  // Same journal, same checkpoint directory, no chaos: the daemon must
  // re-admit the interrupted job under its original id and resume it.
  ChaosDaemon revived(socket, journal, ckpt_dir);
  ASSERT_TRUE(revived.wait_ready());
  svc::Client client(revived.socket_path_);
  EXPECT_GE(client.stats().int_or("recovered", 0), 1);

  const svc::wire::Json job = client.result(id, 120000);
  ASSERT_EQ(job.string_or("state", ""), "DONE")
      << job.string_or("error", "");
  const std::vector<double> resumed = ritz_extremes(job);
  ASSERT_EQ(resumed.size(), reference.size());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    EXPECT_NEAR(resumed[i], reference[i], 1e-12) << "extreme " << i;
  }
  EXPECT_EQ(revived.terminate_and_wait(), 0);
  ::unlink(journal.c_str());
}

TEST(Chaos, CrashFaultAtJournalAppendRecoversOnRestart) {
  const std::string socket = tmp_path("crash", ".sock");
  const std::string journal = tmp_path("crash", ".journal");
  const std::string ckpt_dir = tmp_path("crash", "-ckpt");
  ::unlink(journal.c_str());

  std::uint64_t id = 0;
  {
    // The second append is the job's RUNNING record: the daemon aborts the
    // instant the job starts, after SUBMITTED (with the spec) is durable.
    ChaosDaemon daemon(socket, journal, ckpt_dir,
                       {"STS_FAULT=journal:append:hit=2:kind=crash"});
    ASSERT_TRUE(daemon.wait_ready());
    svc::Client client(daemon.socket_path_);
    try {
      const auto out = client.submit(chaos_spec());
      if (out.accepted) id = out.id;
    } catch (const support::Error&) {
      // The executor can trip the crash before the submit ack leaves the
      // daemon: the client sees a severed connection instead of an id.
    }
    EXPECT_EQ(daemon.reap(), -SIGABRT);
  }

  // Whatever the client saw, the SUBMITTED record hit the disk first — the
  // journal is the source of truth for what must be recovered.
  const auto replay = svc::Journal::replay(journal);
  ASSERT_FALSE(replay.records.empty());
  EXPECT_EQ(replay.records[0].event, "SUBMITTED");
  if (id == 0) id = replay.records[0].id;

  ChaosDaemon revived(socket, journal, ckpt_dir);
  ASSERT_TRUE(revived.wait_ready());
  svc::Client client(revived.socket_path_);
  EXPECT_GE(client.stats().int_or("recovered", 0), 1);
  const svc::wire::Json job = client.result(id, 120000);
  EXPECT_EQ(job.string_or("state", ""), "DONE")
      << job.string_or("error", "");
  EXPECT_EQ(revived.terminate_and_wait(), 0);
  ::unlink(journal.c_str());
}

TEST(Chaos, RetryingClientRidesOutADaemonRestart) {
  const std::string socket = tmp_path("retry", ".sock");
  const std::string journal = tmp_path("retry", ".journal");
  ::unlink(journal.c_str());

  ChaosDaemon first(socket, journal, "");
  ASSERT_TRUE(first.wait_ready());

  svc::RetryPolicy retry;
  retry.attempts = 40;
  retry.base_ms = 25;
  retry.seed = 7;
  svc::Client client(socket, retry);
  ASSERT_TRUE(client.ping());

  first.kill_hard();
  ChaosDaemon second(socket, journal, "");

  // The daemon is down or restarting for a while; the retrying client's
  // next call reconnects under the hood instead of surfacing the outage.
  EXPECT_TRUE(client.ping());
  EXPECT_EQ(second.terminate_and_wait(), 0);
  ::unlink(journal.c_str());
}

} // namespace
} // namespace sts
