#include <gtest/gtest.h>

#include <cmath>

#include "la/blas.hpp"
#include "la/dense.hpp"
#include "la/eig.hpp"
#include "support/rng.hpp"

namespace sts::la {
namespace {

using support::Xoshiro256;

DenseMatrix random_matrix(index_t rows, index_t cols, std::uint64_t seed) {
  DenseMatrix m(rows, cols);
  Xoshiro256 rng(seed);
  m.fill_random(rng);
  return m;
}

DenseMatrix random_spd(index_t n, std::uint64_t seed) {
  DenseMatrix b = random_matrix(n, n, seed);
  DenseMatrix spd(n, n);
  // spd = B^T B + n * I is symmetric positive definite.
  gemm_tn(1.0, b.view(), b.view(), 0.0, spd.view());
  for (index_t i = 0; i < n; ++i) {
    spd.at(i, i) += static_cast<double>(n);
  }
  return spd;
}

/// Reference O(n^3) triple-loop multiply.
DenseMatrix naive_gemm(const DenseMatrix& a, const DenseMatrix& b) {
  DenseMatrix c(a.rows(), b.cols());
  for (index_t i = 0; i < a.rows(); ++i) {
    for (index_t j = 0; j < b.cols(); ++j) {
      double acc = 0.0;
      for (index_t k = 0; k < a.cols(); ++k) acc += a.at(i, k) * b.at(k, j);
      c.at(i, j) = acc;
    }
  }
  return c;
}

TEST(DenseMatrix, InitializerListAndAccess) {
  DenseMatrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 2);
  EXPECT_EQ(m.at(1, 0), 3.0);
  m.at(1, 0) = 9.0;
  EXPECT_EQ(m.at(1, 0), 9.0);
}

TEST(DenseMatrix, RowBlockViewsShareStorage) {
  DenseMatrix m(10, 3);
  auto blk = m.row_block(4, 2);
  blk.at(0, 1) = 5.0;
  EXPECT_EQ(m.at(4, 1), 5.0);
  EXPECT_EQ(blk.rows, 2);
  EXPECT_EQ(blk.ld, 3);
}

TEST(DenseMatrix, CloneIsDeep) {
  DenseMatrix m{{1.0}};
  DenseMatrix c = m.clone();
  c.at(0, 0) = 2.0;
  EXPECT_EQ(m.at(0, 0), 1.0);
}

struct GemmCase {
  index_t m, n, k;
  double alpha, beta;
};

class GemmTest : public ::testing::TestWithParam<GemmCase> {};

TEST_P(GemmTest, MatchesNaiveReference) {
  const auto [m, n, k, alpha, beta] = GetParam();
  DenseMatrix a = random_matrix(m, k, 1);
  DenseMatrix b = random_matrix(k, n, 2);
  DenseMatrix c = random_matrix(m, n, 3);
  DenseMatrix expected = c.clone();
  DenseMatrix ab = naive_gemm(a, b);
  for (index_t i = 0; i < m; ++i) {
    for (index_t j = 0; j < n; ++j) {
      expected.at(i, j) = alpha * ab.at(i, j) + beta * expected.at(i, j);
    }
  }
  gemm(alpha, a.view(), b.view(), beta, c.view());
  for (index_t i = 0; i < m; ++i) {
    for (index_t j = 0; j < n; ++j) {
      ASSERT_NEAR(c.at(i, j), expected.at(i, j), 1e-12) << i << "," << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmTest,
    ::testing::Values(GemmCase{1, 1, 1, 1.0, 0.0},
                      GemmCase{5, 3, 4, 1.0, 0.0},
                      GemmCase{16, 8, 16, -1.0, 1.0},
                      GemmCase{33, 7, 12, 2.5, 0.5},
                      GemmCase{64, 1, 64, 1.0, 1.0},
                      GemmCase{10, 48, 10, 0.5, 0.0}));

class GemmTnTest : public ::testing::TestWithParam<GemmCase> {};

TEST_P(GemmTnTest, MatchesTransposedReference) {
  const auto [m, n, k, alpha, beta] = GetParam();
  // C(k x n) = alpha A(m x k)^T B(m x n) + beta C.
  DenseMatrix a = random_matrix(m, k, 4);
  DenseMatrix b = random_matrix(m, n, 5);
  DenseMatrix c = random_matrix(k, n, 6);
  DenseMatrix at(k, m);
  for (index_t i = 0; i < m; ++i) {
    for (index_t j = 0; j < k; ++j) at.at(j, i) = a.at(i, j);
  }
  DenseMatrix ab = naive_gemm(at, b);
  DenseMatrix expected = c.clone();
  for (index_t i = 0; i < k; ++i) {
    for (index_t j = 0; j < n; ++j) {
      expected.at(i, j) = alpha * ab.at(i, j) + beta * expected.at(i, j);
    }
  }
  gemm_tn(alpha, a.view(), b.view(), beta, c.view());
  for (index_t i = 0; i < k; ++i) {
    for (index_t j = 0; j < n; ++j) {
      ASSERT_NEAR(c.at(i, j), expected.at(i, j), 1e-12);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmTnTest,
    ::testing::Values(GemmCase{4, 4, 4, 1.0, 0.0},
                      GemmCase{100, 8, 8, 1.0, 0.0},
                      GemmCase{77, 5, 9, -1.0, 1.0},
                      GemmCase{12, 16, 1, 1.0, 0.5}));

TEST(Blas, AxpyDotNormAgree) {
  DenseMatrix x = random_matrix(20, 3, 7);
  DenseMatrix y = random_matrix(20, 3, 8);
  DenseMatrix y0 = y.clone();
  axpy(2.0, x.view(), y.view());
  for (index_t i = 0; i < 20; ++i) {
    for (index_t j = 0; j < 3; ++j) {
      ASSERT_NEAR(y.at(i, j), y0.at(i, j) + 2.0 * x.at(i, j), 1e-14);
    }
  }
  double expected_dot = 0.0;
  for (index_t i = 0; i < 20; ++i) {
    for (index_t j = 0; j < 3; ++j) expected_dot += x.at(i, j) * y.at(i, j);
  }
  EXPECT_NEAR(dot(x.view(), y.view()), expected_dot, 1e-12);
  EXPECT_NEAR(norm_fro(x.view()), std::sqrt(dot(x.view(), x.view())), 1e-14);
}

TEST(Blas, ScalAndCopy) {
  DenseMatrix x = random_matrix(9, 2, 10);
  DenseMatrix orig = x.clone();
  scal(-3.0, x.view());
  for (index_t i = 0; i < 9; ++i) {
    for (index_t j = 0; j < 2; ++j) {
      ASSERT_EQ(x.at(i, j), -3.0 * orig.at(i, j));
    }
  }
  DenseMatrix y(9, 2);
  copy(x.view(), y.view());
  for (index_t i = 0; i < 9; ++i) {
    for (index_t j = 0; j < 2; ++j) ASSERT_EQ(y.at(i, j), x.at(i, j));
  }
}

TEST(Blas, SpanKernels) {
  std::vector<double> x = {1, 2, 3};
  std::vector<double> y = {4, 5, 6};
  EXPECT_NEAR(dot(std::span<const double>(x), std::span<const double>(y)),
              32.0, 1e-14);
  axpy(2.0, std::span<const double>(x), std::span<double>(y));
  EXPECT_EQ(y[0], 6.0);
  scal(0.5, std::span<double>(y));
  EXPECT_EQ(y[0], 3.0);
  EXPECT_NEAR(nrm2(std::span<const double>(x)), std::sqrt(14.0), 1e-14);
}

TEST(Jacobi, DiagonalMatrixEigenvalues) {
  DenseMatrix a{{3.0, 0.0, 0.0}, {0.0, 1.0, 0.0}, {0.0, 0.0, 2.0}};
  EigenResult r = jacobi_eigen(a.view());
  ASSERT_EQ(r.values.size(), 3u);
  EXPECT_NEAR(r.values[0], 1.0, 1e-12);
  EXPECT_NEAR(r.values[1], 2.0, 1e-12);
  EXPECT_NEAR(r.values[2], 3.0, 1e-12);
}

TEST(Jacobi, KnownTwoByTwo) {
  // Eigenvalues of [[2,1],[1,2]] are 1 and 3.
  DenseMatrix a{{2.0, 1.0}, {1.0, 2.0}};
  EigenResult r = jacobi_eigen(a.view());
  EXPECT_NEAR(r.values[0], 1.0, 1e-12);
  EXPECT_NEAR(r.values[1], 3.0, 1e-12);
}

class JacobiPropertyTest : public ::testing::TestWithParam<index_t> {};

TEST_P(JacobiPropertyTest, ReconstructsMatrixAndOrthonormalVectors) {
  const index_t n = GetParam();
  DenseMatrix a = random_spd(n, 42 + static_cast<std::uint64_t>(n));
  EigenResult r = jacobi_eigen(a.view());
  // Vectors orthonormal: V^T V = I.
  DenseMatrix vtv(n, n);
  gemm_tn(1.0, r.vectors.view(), r.vectors.view(), 0.0, vtv.view());
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < n; ++j) {
      ASSERT_NEAR(vtv.at(i, j), i == j ? 1.0 : 0.0, 1e-9);
    }
  }
  // A v_i = lambda_i v_i.
  for (index_t c = 0; c < n; ++c) {
    for (index_t i = 0; i < n; ++i) {
      double av = 0.0;
      for (index_t k = 0; k < n; ++k) av += a.at(i, k) * r.vectors.at(k, c);
      ASSERT_NEAR(av, r.values[static_cast<std::size_t>(c)] *
                          r.vectors.at(i, c),
                  1e-8 * static_cast<double>(n));
    }
  }
  // Values ascending.
  for (std::size_t i = 1; i < r.values.size(); ++i) {
    ASSERT_LE(r.values[i - 1], r.values[i] + 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, JacobiPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 16, 24, 48));

TEST(Tridiag, MatchesJacobiOnTridiagonalMatrix) {
  const index_t n = 12;
  std::vector<double> alpha(n);
  std::vector<double> beta(n - 1);
  Xoshiro256 rng(3);
  DenseMatrix full(n, n);
  for (index_t i = 0; i < n; ++i) {
    alpha[static_cast<std::size_t>(i)] = rng.uniform(-2, 2);
    full.at(i, i) = alpha[static_cast<std::size_t>(i)];
  }
  for (index_t i = 0; i + 1 < n; ++i) {
    beta[static_cast<std::size_t>(i)] = rng.uniform(0.1, 1.0);
    full.at(i, i + 1) = beta[static_cast<std::size_t>(i)];
    full.at(i + 1, i) = beta[static_cast<std::size_t>(i)];
  }
  const std::vector<double> ql = tridiag_eigenvalues(alpha, beta);
  const EigenResult ref = jacobi_eigen(full.view());
  ASSERT_EQ(ql.size(), ref.values.size());
  for (std::size_t i = 0; i < ql.size(); ++i) {
    EXPECT_NEAR(ql[i], ref.values[i], 1e-9);
  }
}

TEST(Tridiag, HandlesEmptyAndSingle) {
  EXPECT_TRUE(tridiag_eigenvalues({}, {}).empty());
  const auto single = tridiag_eigenvalues({5.0}, {});
  ASSERT_EQ(single.size(), 1u);
  EXPECT_NEAR(single[0], 5.0, 1e-14);
}

TEST(Cholesky, FactorizesSpdAndSolves) {
  const index_t n = 10;
  DenseMatrix a = random_spd(n, 99);
  DenseMatrix l = a.clone();
  ASSERT_TRUE(cholesky_lower(l.view()));
  // Check A = L L^T (lower triangle of l is the factor).
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j <= i; ++j) {
      double acc = 0.0;
      for (index_t k = 0; k <= j; ++k) acc += l.at(i, k) * l.at(j, k);
      ASSERT_NEAR(acc, a.at(i, j), 1e-9);
    }
  }
  // Solve L (L^T x) = b and verify A x = b.
  DenseMatrix b = random_matrix(n, 2, 11);
  DenseMatrix x = b.clone();
  solve_lower(l.view(), x.view());
  solve_lower_transposed(l.view(), x.view());
  DenseMatrix ax = naive_gemm(a, x);
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < 2; ++j) {
      ASSERT_NEAR(ax.at(i, j), b.at(i, j), 1e-8);
    }
  }
}

TEST(Cholesky, RejectsIndefinite) {
  DenseMatrix a{{1.0, 2.0}, {2.0, 1.0}}; // eigenvalues -1, 3
  EXPECT_FALSE(cholesky_lower(a.view()));
}

TEST(GeneralizedEigen, ReducesToStandardWithIdentityB) {
  const index_t n = 6;
  DenseMatrix a = random_spd(n, 17);
  DenseMatrix b(n, n);
  for (index_t i = 0; i < n; ++i) b.at(i, i) = 1.0;
  const EigenResult gen = sym_generalized_eigen(a.view(), b.view());
  const EigenResult std_r = jacobi_eigen(a.view());
  for (index_t i = 0; i < n; ++i) {
    EXPECT_NEAR(gen.values[static_cast<std::size_t>(i)],
                std_r.values[static_cast<std::size_t>(i)], 1e-9);
  }
}

TEST(GeneralizedEigen, SatisfiesPencilEquation) {
  const index_t n = 8;
  DenseMatrix a = random_spd(n, 21);
  DenseMatrix b = random_spd(n, 22);
  const EigenResult r = sym_generalized_eigen(a.view(), b.view());
  // A v = lambda B v and V^T B V = I.
  DenseMatrix bv = naive_gemm(b, r.vectors);
  DenseMatrix av = naive_gemm(a, r.vectors);
  for (index_t c = 0; c < n; ++c) {
    for (index_t i = 0; i < n; ++i) {
      ASSERT_NEAR(av.at(i, c),
                  r.values[static_cast<std::size_t>(c)] * bv.at(i, c), 1e-7);
    }
  }
  DenseMatrix vtbv(n, n);
  gemm_tn(1.0, r.vectors.view(), bv.view(), 0.0, vtbv.view());
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < n; ++j) {
      ASSERT_NEAR(vtbv.at(i, j), i == j ? 1.0 : 0.0, 1e-8);
    }
  }
}

TEST(GeneralizedEigen, ThrowsOnNonSpdB) {
  DenseMatrix a{{1.0, 0.0}, {0.0, 1.0}};
  DenseMatrix b{{1.0, 2.0}, {2.0, 1.0}};
  EXPECT_THROW((void)sym_generalized_eigen(a.view(), b.view()),
               support::Error);
}

TEST(Orthonormalize, ProducesOrthonormalColumns) {
  DenseMatrix x = random_matrix(50, 6, 31);
  const index_t rank = orthonormalize_columns(x.view());
  EXPECT_EQ(rank, 6);
  DenseMatrix g(6, 6);
  gemm_tn(1.0, x.view(), x.view(), 0.0, g.view());
  for (index_t i = 0; i < 6; ++i) {
    for (index_t j = 0; j < 6; ++j) {
      ASSERT_NEAR(g.at(i, j), i == j ? 1.0 : 0.0, 1e-10);
    }
  }
}

TEST(Orthonormalize, DetectsRankDeficiency) {
  DenseMatrix x(20, 3);
  Xoshiro256 rng(5);
  for (index_t i = 0; i < 20; ++i) {
    x.at(i, 0) = rng.uniform(-1, 1);
    x.at(i, 1) = 2.0 * x.at(i, 0); // dependent column
    x.at(i, 2) = rng.uniform(-1, 1);
  }
  EXPECT_EQ(orthonormalize_columns(x.view()), 2);
}

} // namespace
} // namespace sts::la
