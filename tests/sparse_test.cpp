#include <gtest/gtest.h>

#include <sstream>

#include "sparse/coo.hpp"
#include "sparse/csb.hpp"
#include "sparse/csr.hpp"
#include "sparse/generators.hpp"
#include "sparse/mm_io.hpp"
#include "sparse/stats.hpp"
#include "sparse/suite.hpp"

namespace sts::sparse {
namespace {

TEST(Coo, FinalizeSortsAndSumsDuplicates) {
  Coo coo(3, 3);
  coo.add(2, 1, 1.0);
  coo.add(0, 0, 2.0);
  coo.add(2, 1, 3.0);
  coo.finalize();
  ASSERT_EQ(coo.nnz(), 2);
  EXPECT_EQ(coo.entries()[0], (Triplet{0, 0, 2.0}));
  EXPECT_EQ(coo.entries()[1], (Triplet{2, 1, 4.0}));
}

TEST(Coo, SymmetrizeLowerMatchesPaperFormula) {
  // A_new = L + L^T - D where L is the lower triangle incl. diagonal.
  Coo coo(2, 2);
  coo.add(0, 0, 1.0);
  coo.add(0, 1, 9.0); // upper entry must be discarded
  coo.add(1, 0, 2.0);
  coo.add(1, 1, 3.0);
  coo.symmetrize_lower();
  la::DenseMatrix d = coo.to_dense();
  EXPECT_EQ(d.at(0, 0), 1.0);
  EXPECT_EQ(d.at(0, 1), 2.0);
  EXPECT_EQ(d.at(1, 0), 2.0);
  EXPECT_EQ(d.at(1, 1), 3.0);
  EXPECT_TRUE(coo.is_symmetric());
}

TEST(Coo, FillRandomSymmetricKeepsSymmetry) {
  Coo coo(10, 10);
  support::Xoshiro256 rng(4);
  for (int k = 0; k < 30; ++k) {
    const auto i = static_cast<index_t>(rng.below(10));
    const auto j = static_cast<index_t>(rng.below(10));
    coo.add(i, j, 1.0);
    if (i != j) coo.add(j, i, 1.0);
  }
  coo.finalize();
  support::Xoshiro256 fill(9);
  coo.fill_random_symmetric(fill);
  EXPECT_TRUE(coo.is_symmetric());
  for (const Triplet& t : coo.entries()) {
    EXPECT_GE(t.value, 0.1);
    EXPECT_LE(t.value, 1.0);
  }
}

TEST(Csr, RoundTripsThroughCoo) {
  Coo coo(4, 4);
  coo.add(0, 1, 1.0);
  coo.add(3, 3, 2.0);
  coo.add(1, 0, 3.0);
  Csr csr = Csr::from_coo(coo);
  EXPECT_EQ(csr.nnz(), 3);
  EXPECT_EQ(csr.row_nnz(0), 1);
  EXPECT_EQ(csr.row_nnz(2), 0);
  Coo back = csr.to_coo();
  back.finalize();
  coo.finalize();
  EXPECT_EQ(back.entries(), coo.entries());
}

TEST(Csr, SpmvMatchesDense) {
  Coo coo = gen_fem3d(4, 4, 4, 1, 11);
  Csr csr = Csr::from_coo(coo);
  la::DenseMatrix dense = coo.to_dense();
  std::vector<double> x(static_cast<std::size_t>(csr.cols()));
  support::Xoshiro256 rng(2);
  for (double& v : x) v = rng.uniform(-1, 1);
  std::vector<double> y(static_cast<std::size_t>(csr.rows()));
  csr_spmv_range(csr, x, y, 0, csr.rows());
  for (index_t r = 0; r < csr.rows(); ++r) {
    double acc = 0.0;
    for (index_t c = 0; c < csr.cols(); ++c) {
      acc += dense.at(r, c) * x[static_cast<std::size_t>(c)];
    }
    ASSERT_NEAR(y[static_cast<std::size_t>(r)], acc, 1e-10);
  }
}

TEST(Csr, SpmmRangeComputesSubsetOnly) {
  Coo coo = gen_banded_random(32, 4, 0.8, 3);
  Csr csr = Csr::from_coo(coo);
  la::DenseMatrix x(32, 3);
  support::Xoshiro256 rng(5);
  x.fill_random(rng);
  la::DenseMatrix y(32, 3);
  y.fill(-7.0);
  csr_spmm_range(csr, x.view(), y.view(), 8, 16);
  for (index_t r = 0; r < 8; ++r) {
    ASSERT_EQ(y.at(r, 0), -7.0); // untouched outside the range
  }
  la::DenseMatrix dense = coo.to_dense();
  for (index_t r = 8; r < 16; ++r) {
    for (index_t j = 0; j < 3; ++j) {
      double acc = 0.0;
      for (index_t c = 0; c < 32; ++c) acc += dense.at(r, c) * x.at(c, j);
      ASSERT_NEAR(y.at(r, j), acc, 1e-10);
    }
  }
}

class CsbRoundTrip : public ::testing::TestWithParam<index_t> {};

TEST_P(CsbRoundTrip, PreservesAllEntries) {
  const index_t block = GetParam();
  Coo coo = gen_rmat(7, 6, 0.57, 0.19, 0.19, 13);
  Csb csb = Csb::from_coo(coo, block);
  EXPECT_EQ(csb.nnz(), coo.nnz());
  Coo back = csb.to_coo();
  back.finalize();
  coo.finalize();
  EXPECT_EQ(back.entries(), coo.entries());
  EXPECT_EQ(csb.block_rows(), (coo.rows() + block - 1) / block);
}

INSTANTIATE_TEST_SUITE_P(BlockSizes, CsbRoundTrip,
                         ::testing::Values(1, 3, 16, 50, 128, 1000));

TEST(Csb, BlockSpmvAccumulatesAcrossBlocks) {
  Coo coo = gen_fem3d(5, 5, 5, 1, 17);
  const index_t block = 32;
  Csb csb = Csb::from_coo(coo, block);
  Csr csr = Csr::from_coo(coo);
  std::vector<double> x(static_cast<std::size_t>(csb.cols()));
  support::Xoshiro256 rng(6);
  for (double& v : x) v = rng.uniform(-1, 1);
  std::vector<double> y(static_cast<std::size_t>(csb.rows()), 0.0);
  for (index_t bi = 0; bi < csb.block_rows(); ++bi) {
    for (index_t bj = 0; bj < csb.block_cols(); ++bj) {
      if (!csb.block_empty(bi, bj)) csb_block_spmv(csb, bi, bj, x, y);
    }
  }
  std::vector<double> ref(static_cast<std::size_t>(csb.rows()));
  csr_spmv_range(csr, x, ref, 0, csr.rows());
  for (std::size_t i = 0; i < y.size(); ++i) ASSERT_NEAR(y[i], ref[i], 1e-10);
}

TEST(Csb, BlockSpmmMatchesCsr) {
  Coo coo = gen_banded_random(100, 10, 0.5, 19);
  Csb csb = Csb::from_coo(coo, 17); // deliberately non-dividing block size
  Csr csr = Csr::from_coo(coo);
  la::DenseMatrix x(100, 4);
  support::Xoshiro256 rng(7);
  x.fill_random(rng);
  la::DenseMatrix y(100, 4);
  for (index_t bi = 0; bi < csb.block_rows(); ++bi) {
    csb_block_zero(csb, bi, y.view());
    for (index_t bj = 0; bj < csb.block_cols(); ++bj) {
      if (!csb.block_empty(bi, bj)) {
        csb_block_spmm(csb, bi, bj, x.view(), y.view());
      }
    }
  }
  la::DenseMatrix ref(100, 4);
  csr_spmm_range(csr, x.view(), ref.view(), 0, 100);
  for (index_t i = 0; i < 100; ++i) {
    for (index_t j = 0; j < 4; ++j) {
      ASSERT_NEAR(y.at(i, j), ref.at(i, j), 1e-10);
    }
  }
}

/// Structural invariants of the packed SoA layout plus agreement of the
/// row-segmented kernels with the CSR reference, for one matrix + block
/// size. Exercised across divisible and non-divisible shapes below.
void expect_csb_matches_csr(const Coo& coo, index_t block) {
  SCOPED_TRACE("block=" + std::to_string(block) +
               " rows=" + std::to_string(coo.rows()));
  Csb csb = Csb::from_coo(coo, block);
  Csr csr = Csr::from_coo(coo);
  ASSERT_EQ(csb.nnz(), coo.nnz());

  // BlockView invariants: segments cover each block exactly, rows strictly
  // increase, columns strictly increase within a segment, and everything
  // stays inside the (possibly short) block.
  index_t seg_nnz_total = 0;
  index_t nonempty = 0;
  for (index_t bi = 0; bi < csb.block_rows(); ++bi) {
    for (index_t bj = 0; bj < csb.block_cols(); ++bj) {
      const Csb::BlockView v = csb.block_view(bi, bj);
      ASSERT_EQ(v.nnz, csb.block_nnz(bi, bj));
      if (v.nnz > 0) ++nonempty;
      std::int64_t next_begin = v.first;
      std::int32_t prev_row = -1;
      std::int64_t seg_sum = 0;
      for (const Csb::RowSegment& seg : v.segments) {
        ASSERT_GT(seg.count, 0);
        ASSERT_GT(seg.row, prev_row);
        prev_row = seg.row;
        ASSERT_LT(static_cast<index_t>(seg.row), csb.rows_in_block(bi));
        ASSERT_EQ(seg.begin, next_begin);
        next_begin += seg.count;
        index_t prev_col = -1;
        for (std::int64_t t = seg.begin; t < seg.begin + seg.count; ++t) {
          const index_t c = v.col(t);
          ASSERT_GT(c, prev_col);
          prev_col = c;
          ASSERT_LT(c, csb.cols_in_block(bj));
        }
        seg_sum += seg.count;
      }
      ASSERT_EQ(seg_sum, v.nnz);
      seg_nnz_total += static_cast<index_t>(seg_sum);
    }
  }
  ASSERT_EQ(seg_nnz_total, csb.nnz());
  ASSERT_EQ(nonempty, csb.nonempty_blocks());

  support::Xoshiro256 rng(static_cast<std::uint64_t>(block) * 7919 + 1);

  // SpMV against the CSR reference.
  std::vector<double> x(static_cast<std::size_t>(csb.cols()));
  for (double& v : x) v = rng.uniform(-1, 1);
  std::vector<double> y(static_cast<std::size_t>(csb.rows()), 0.0);
  for (index_t bi = 0; bi < csb.block_rows(); ++bi) {
    for (index_t bj = 0; bj < csb.block_cols(); ++bj) {
      if (!csb.block_empty(bi, bj)) csb_block_spmv(csb, bi, bj, x, y);
    }
  }
  std::vector<double> ref(static_cast<std::size_t>(csb.rows()));
  csr_spmv_range(csr, x, ref, 0, csr.rows());
  for (std::size_t i = 0; i < y.size(); ++i) {
    ASSERT_NEAR(y[i], ref[i], 1e-10) << "spmv row " << i;
  }

  // SpMM for every specialized width and the generic tail.
  for (const index_t n : {1, 3, 4, 5, 8, 16}) {
    SCOPED_TRACE("n=" + std::to_string(n));
    la::DenseMatrix xm(csb.cols(), n);
    xm.fill_random(rng);
    la::DenseMatrix ym(csb.rows(), n);
    for (index_t bi = 0; bi < csb.block_rows(); ++bi) {
      csb_block_zero(csb, bi, ym.view());
      for (index_t bj = 0; bj < csb.block_cols(); ++bj) {
        if (!csb.block_empty(bi, bj)) {
          csb_block_spmm(csb, bi, bj, xm.view(), ym.view());
        }
      }
    }
    la::DenseMatrix refm(csb.rows(), n);
    csr_spmm_range(csr, xm.view(), refm.view(), 0, csr.rows());
    for (index_t i = 0; i < csb.rows(); ++i) {
      for (index_t j = 0; j < n; ++j) {
        ASSERT_NEAR(ym.at(i, j), refm.at(i, j), 1e-10)
            << "spmm (" << i << ", " << j << ")";
      }
    }
  }
}

TEST(Csb, RandomizedKernelsMatchCsrAcrossBlockSizes) {
  // Banded: many empty off-band blocks. 97 rows: non-divisible for every
  // block size here, and block=16 leaves a 1-row last block (97 = 6*16+1).
  Coo banded = gen_banded_random(97, 9, 0.5, 101);
  for (const index_t block : {1, 7, 16, 17, 50, 128}) {
    expect_csb_matches_csr(banded, block);
  }
  // Skewed (R-MAT): dense hub rows, long row segments, irregular blocks.
  Coo rmat = gen_rmat(6, 7, 0.57, 0.19, 0.19, 103);
  for (const index_t block : {3, 13, 64}) {
    expect_csb_matches_csr(rmat, block);
  }
}

TEST(Csb, WideBlockFallsBackTo32BitCoords) {
  // block_size > 65536 cannot pack local columns into 16 bits; the layout
  // must switch to the 32-bit coordinate stream and still agree with CSR.
  Coo coo = gen_banded_random(120, 11, 0.6, 107);
  Csb narrow = Csb::from_coo(coo, 64);
  EXPECT_TRUE(narrow.packed_coords());
  EXPECT_EQ(narrow.entry_bytes(), sizeof(double) + sizeof(std::uint16_t));
  Csb wide = Csb::from_coo(coo, 70000);
  EXPECT_FALSE(wide.packed_coords());
  EXPECT_EQ(wide.entry_bytes(), sizeof(double) + sizeof(std::uint32_t));
  expect_csb_matches_csr(coo, 70000);
}

TEST(Csb, BytesPerNnzReflectsPackedLayout) {
  Coo coo = gen_fem3d(6, 6, 6, 1, 109);
  Csb csb = Csb::from_coo(coo, 64);
  // 10 bytes value+coord; the row-segment index adds a few more, but the
  // total must stay well under the 16-byte AoS entry it replaced.
  EXPECT_GE(csb.bytes_per_nnz(), 10.0);
  EXPECT_LT(csb.bytes_per_nnz(), 16.0);
}

TEST(Csb, NonemptyBlockCountsAndStats) {
  Coo coo(8, 8);
  coo.add(0, 0, 1.0);
  coo.add(7, 7, 1.0);
  Csb csb = Csb::from_coo(coo, 4);
  EXPECT_EQ(csb.nonempty_blocks(), 2);
  const BlockingStats st = compute_blocking_stats(csb);
  EXPECT_EQ(st.total_blocks, 4);
  EXPECT_DOUBLE_EQ(st.empty_fraction, 0.5);
  EXPECT_EQ(st.max_block_nnz, 1);
}

TEST(MatrixMarket, RoundTripsGeneral) {
  Coo coo(3, 4);
  coo.add(0, 1, 1.5);
  coo.add(2, 3, -2.0);
  coo.finalize();
  std::stringstream ss;
  write_matrix_market(ss, coo, false);
  Coo back = read_matrix_market(ss);
  EXPECT_EQ(back.rows(), 3);
  EXPECT_EQ(back.cols(), 4);
  EXPECT_EQ(back.entries(), coo.entries());
}

TEST(MatrixMarket, ExpandsSymmetricFiles) {
  std::stringstream ss;
  ss << "%%MatrixMarket matrix coordinate real symmetric\n"
     << "% comment line\n"
     << "2 2 2\n"
     << "1 1 1.0\n"
     << "2 1 5.0\n";
  Coo coo = read_matrix_market(ss);
  EXPECT_EQ(coo.nnz(), 3);
  EXPECT_TRUE(coo.is_symmetric());
}

TEST(MatrixMarket, ReadsPatternFiles) {
  std::stringstream ss;
  ss << "%%MatrixMarket matrix coordinate pattern general\n"
     << "2 2 1\n"
     << "2 2\n";
  Coo coo = read_matrix_market(ss);
  ASSERT_EQ(coo.nnz(), 1);
  EXPECT_EQ(coo.entries()[0].value, 1.0);
}

TEST(MatrixMarket, RejectsMalformedInput) {
  std::stringstream bad1("not a banner\n");
  EXPECT_THROW((void)read_matrix_market(bad1), support::Error);
  std::stringstream bad2(
      "%%MatrixMarket matrix coordinate real general\n2 2 1\n5 5 1.0\n");
  EXPECT_THROW((void)read_matrix_market(bad2), support::Error);
}

/// what() of the support::Error thrown when parsing `text`.
std::string mm_error(const std::string& text) {
  std::stringstream ss(text);
  try {
    (void)read_matrix_market(ss);
  } catch (const support::Error& e) {
    return e.what();
  }
  ADD_FAILURE() << "expected support::Error for: " << text;
  return {};
}

TEST(MatrixMarket, RejectsNegativeAndOversizedHeaders) {
  EXPECT_NE(mm_error("%%MatrixMarket matrix coordinate real general\n"
                     "-2 2 1\n1 1 1.0\n")
                .find("negative"),
            std::string::npos);
  EXPECT_NE(mm_error("%%MatrixMarket matrix coordinate real general\n"
                     "2 2 -1\n")
                .find("negative"),
            std::string::npos);
  // 2^33 rows: exceeds the 32-bit triplet index range.
  EXPECT_NE(mm_error("%%MatrixMarket matrix coordinate real general\n"
                     "8589934592 2 1\n1 1 1.0\n")
                .find("32-bit"),
            std::string::npos);
  // More entries than the matrix has cells.
  EXPECT_NE(mm_error("%%MatrixMarket matrix coordinate real general\n"
                     "2 2 5\n1 1 1.0\n1 2 1.0\n2 1 1.0\n2 2 1.0\n1 1 1.0\n")
                .find("capacity"),
            std::string::npos);
}

TEST(MatrixMarket, RejectsComplexFieldWithSpecificMessage) {
  EXPECT_NE(mm_error("%%MatrixMarket matrix coordinate complex general\n"
                     "2 2 1\n1 1 1.0 0.0\n")
                .find("complex"),
            std::string::npos);
}

TEST(MatrixMarket, ErrorsNameTheOffendingEntry) {
  // Second of three entries is out of range.
  const std::string msg =
      mm_error("%%MatrixMarket matrix coordinate real general\n"
               "2 2 3\n1 1 1.0\n5 1 2.0\n2 2 3.0\n");
  EXPECT_NE(msg.find("entry 2 of 3"), std::string::npos);
  EXPECT_NE(msg.find("(5, 1)"), std::string::npos);
  // Truncated after the first of two entries.
  EXPECT_NE(mm_error("%%MatrixMarket matrix coordinate real general\n"
                     "2 2 2\n1 1 1.0\n")
                .find("entry 2 of 2"),
            std::string::npos);
  // Pattern-style entry in a real file: the value is missing.
  EXPECT_NE(mm_error("%%MatrixMarket matrix coordinate real general\n"
                     "2 2 1\n1 1\n")
                .find("missing value"),
            std::string::npos);
}

TEST(MatrixMarket, AcceptsCrlfLineEndings) {
  std::stringstream ss("%%MatrixMarket matrix coordinate real general\r\n"
                       "% written on Windows\r\n"
                       "2 2 2\r\n"
                       "1 1 1.5\r\n"
                       "2 2 2.5\r\n");
  Coo coo = read_matrix_market(ss);
  EXPECT_EQ(coo.rows(), 2);
  ASSERT_EQ(coo.nnz(), 2);
  EXPECT_EQ(coo.entries()[0].value, 1.5);
  EXPECT_EQ(coo.entries()[1].value, 2.5);
}

class GeneratorSymmetryTest
    : public ::testing::TestWithParam<std::function<Coo()>> {};

TEST_P(GeneratorSymmetryTest, ProducesSymmetricSquareMatrix) {
  Coo coo = GetParam()();
  EXPECT_EQ(coo.rows(), coo.cols());
  EXPECT_GT(coo.nnz(), 0);
  EXPECT_TRUE(coo.is_symmetric(0.0));
}

INSTANTIATE_TEST_SUITE_P(
    AllGenerators, GeneratorSymmetryTest,
    ::testing::Values([] { return gen_fem3d(6, 5, 4, 1, 1); },
                      [] { return gen_saddle_kkt(300, 100, 3, 2); },
                      [] { return gen_rmat(9, 8, 0.57, 0.19, 0.19, 3); },
                      [] { return gen_block_random(20, 8, 0.2, 0.6, 4); },
                      [] { return gen_banded_random(200, 12, 0.4, 5); },
                      [] { return gen_hub_trace(500, 8, 2.1, 6); }));

TEST(Generators, Fem3dHasStencilDegree) {
  Coo coo = gen_fem3d(10, 10, 10, 1, 7);
  EXPECT_EQ(coo.rows(), 1000);
  const MatrixStats st = compute_stats(Csr::from_coo(coo));
  // Interior nodes have 27 couplings (26 neighbors + diagonal).
  EXPECT_EQ(st.max_row_nnz, 27);
  EXPECT_GT(st.avg_row_nnz, 15.0);
  EXPECT_LT(st.relative_bandwidth, 0.2); // strongly banded
}

TEST(Generators, RmatIsSkewed) {
  Coo coo = gen_rmat(11, 8, 0.57, 0.19, 0.19, 8);
  const MatrixStats st = compute_stats(Csr::from_coo(coo));
  // Power-law: max degree far above average.
  EXPECT_GT(static_cast<double>(st.max_row_nnz), 8.0 * st.avg_row_nnz);
  EXPECT_GT(st.row_nnz_cv, 1.0);
}

TEST(Generators, HubTraceIsUltraSparse) {
  Coo coo = gen_hub_trace(5000, 16, 2.1, 9);
  const MatrixStats st = compute_stats(Csr::from_coo(coo));
  EXPECT_LT(st.avg_row_nnz, 5.0);
  EXPECT_GT(st.max_row_nnz, 100); // hubs
}

TEST(Generators, Deterministic) {
  Coo a = gen_rmat(8, 4, 0.57, 0.19, 0.19, 5);
  Coo b = gen_rmat(8, 4, 0.57, 0.19, 0.19, 5);
  EXPECT_EQ(a.entries(), b.entries());
}

TEST(Suite, HasAllFifteenPaperMatrices) {
  const auto& suite = paper_suite();
  ASSERT_EQ(suite.size(), 15u);
  EXPECT_EQ(suite.front().name, "inline_1");
  EXPECT_EQ(suite.back().name, "mawi_201512020130");
  // Paper Table 1 ordering: rows ascending.
  for (std::size_t i = 1; i < suite.size(); ++i) {
    EXPECT_GT(suite[i].paper_rows, suite[i - 1].paper_rows);
  }
}

TEST(Suite, GeneratesScaledSymmetricMatrices) {
  const SuiteEntry& entry = suite_entry("nlpkkt160");
  Coo coo = entry.make(0.05);
  EXPECT_TRUE(coo.is_symmetric(0.0));
  EXPECT_GT(coo.rows(), 1000);
  EXPECT_THROW((void)suite_entry("no_such_matrix"), support::Error);
}

TEST(Suite, DefaultSubsetIsValid) {
  for (const std::string& name : default_bench_subset()) {
    EXPECT_NO_THROW((void)suite_entry(name));
  }
}

TEST(Stats, ComputesRowStatistics) {
  Coo coo(3, 3);
  coo.add(0, 0, 1.0);
  coo.add(0, 1, 1.0);
  coo.add(0, 2, 1.0);
  coo.add(1, 1, 1.0);
  const MatrixStats st = compute_stats(Csr::from_coo(coo));
  EXPECT_EQ(st.nnz, 4);
  EXPECT_EQ(st.max_row_nnz, 3);
  EXPECT_EQ(st.min_row_nnz, 0);
  EXPECT_NEAR(st.avg_row_nnz, 4.0 / 3.0, 1e-12);
}

} // namespace
} // namespace sts::sparse
