#include <gtest/gtest.h>

#include "graph/tdg.hpp"
#include "support/rng.hpp"

namespace sts::graph {
namespace {

/// Diamond: 0 -> {1, 2} -> 3.
Tdg diamond() {
  Tdg g;
  for (int i = 0; i < 4; ++i) {
    Task t;
    t.kind = KernelKind::kOther;
    t.flops = 1.0;
    g.add_task(std::move(t));
  }
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 3);
  g.add_edge(2, 3);
  return g;
}

TEST(Tdg, IndegreesCountUniquePredecessors) {
  Tdg g = diamond();
  g.add_edge(0, 1); // duplicate
  const auto indeg = g.indegrees();
  EXPECT_EQ(indeg[0], 0);
  EXPECT_EQ(indeg[1], 1); // duplicate counted once
  EXPECT_EQ(indeg[3], 2);
}

TEST(Tdg, TopologicalOrderRespectsEdges) {
  Tdg g = diamond();
  const auto order = g.depth_first_topological_order();
  ASSERT_EQ(order.size(), 4u);
  std::vector<int> pos(4);
  for (int i = 0; i < 4; ++i) pos[static_cast<std::size_t>(order[static_cast<std::size_t>(i)])] = i;
  EXPECT_LT(pos[0], pos[1]);
  EXPECT_LT(pos[0], pos[2]);
  EXPECT_LT(pos[1], pos[3]);
  EXPECT_LT(pos[2], pos[3]);
}

TEST(Tdg, DepthFirstOrderFollowsChains) {
  // Two independent chains a0->a1->a2 and b0->b1->b2: DFS order should
  // finish one chain before starting the other (pipelining property).
  Tdg g;
  for (int i = 0; i < 6; ++i) g.add_task(Task{});
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(3, 4);
  g.add_edge(4, 5);
  const auto order = g.depth_first_topological_order();
  std::vector<int> pos(6);
  for (int i = 0; i < 6; ++i) pos[static_cast<std::size_t>(order[static_cast<std::size_t>(i)])] = i;
  EXPECT_EQ(pos[1], pos[0] + 1);
  EXPECT_EQ(pos[2], pos[0] + 2);
}

TEST(Tdg, CriticalPathOfDiamond) {
  Tdg g = diamond();
  EXPECT_EQ(g.critical_path_tasks(), 3);
  EXPECT_NEAR(g.critical_path_flops(), 3.0, 1e-12);
  EXPECT_NEAR(g.total_flops(), 4.0, 1e-12);
  EXPECT_EQ(g.max_parallelism(), 2);
}

TEST(Tdg, AcyclicDetection) {
  Tdg g = diamond();
  EXPECT_TRUE(g.is_acyclic());
  g.add_edge(3, 0);
  EXPECT_FALSE(g.is_acyclic());
}

TEST(Tdg, EmptyGraphBehaves) {
  Tdg g;
  EXPECT_TRUE(g.is_acyclic());
  EXPECT_EQ(g.critical_path_tasks(), 0);
  EXPECT_TRUE(g.depth_first_topological_order().empty());
}

TEST(Tdg, DotExportContainsNodesAndEdges) {
  Tdg g = diamond();
  g.task(0).kind = KernelKind::kSpMM;
  g.task(0).bi = 1;
  g.task(0).bj = 2;
  const std::string dot = g.to_dot();
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("spmm (1,2)"), std::string::npos);
  EXPECT_NE(dot.find("t0 -> t1"), std::string::npos);
}

TEST(Tdg, RandomDagTopoOrderProperty) {
  support::Xoshiro256 rng(77);
  for (int trial = 0; trial < 20; ++trial) {
    Tdg g;
    const int n = 2 + static_cast<int>(rng.below(60));
    for (int i = 0; i < n; ++i) g.add_task(Task{});
    // Edges only from lower to higher id: guaranteed acyclic.
    for (int i = 0; i < n; ++i) {
      for (int j = i + 1; j < n; ++j) {
        if (rng.uniform() < 0.15) {
          g.add_edge(static_cast<TaskId>(i), static_cast<TaskId>(j));
        }
      }
    }
    ASSERT_TRUE(g.is_acyclic());
    const auto order = g.depth_first_topological_order();
    ASSERT_EQ(order.size(), static_cast<std::size_t>(n));
    std::vector<int> pos(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      pos[static_cast<std::size_t>(order[static_cast<std::size_t>(i)])] = i;
    }
    for (int u = 0; u < n; ++u) {
      for (TaskId v : g.successors(static_cast<TaskId>(u))) {
        ASSERT_LT(pos[static_cast<std::size_t>(u)],
                  pos[static_cast<std::size_t>(v)]);
      }
    }
    ASSERT_GE(g.critical_path_tasks(), 1);
    ASSERT_LE(g.critical_path_tasks(), n);
    ASSERT_GE(g.max_parallelism(), 1);
  }
}

TEST(KernelKind, AllNamesDistinct) {
  EXPECT_STREQ(to_string(KernelKind::kSpMM), "spmm");
  EXPECT_STREQ(to_string(KernelKind::kXTY), "xty");
  EXPECT_STREQ(to_string(KernelKind::kConvCheck), "conv");
}

} // namespace
} // namespace sts::graph
