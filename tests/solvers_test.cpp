#include <gtest/gtest.h>

#include <cmath>

#include "la/eig.hpp"
#include "solvers/lanczos.hpp"
#include "solvers/lobpcg.hpp"
#include "sparse/generators.hpp"
#include "tuning/block_select.hpp"

namespace sts::solver {
namespace {

struct Problem {
  sparse::Coo coo;
  sparse::Csr csr;
  sparse::Csb csb;
  la::EigenResult reference;

  Problem(sparse::Coo c, index_t block)
      : coo(std::move(c)),
        csr(sparse::Csr::from_coo(coo)),
        csb(sparse::Csb::from_coo(coo, block)),
        reference(la::jacobi_eigen(coo.to_dense().view())) {}
};

Problem fem_problem(index_t block = 32) {
  return Problem(sparse::gen_fem3d(6, 6, 6, 1, 101), block);
}

SolverOptions base_options(index_t block = 32) {
  SolverOptions o;
  o.block_size = block;
  o.threads = 2;
  return o;
}

class LanczosVersions : public ::testing::TestWithParam<Version> {};

TEST_P(LanczosVersions, LargestRitzValueMatchesDense) {
  Problem p = fem_problem();
  auto r = lanczos(p.csr, p.csb, 30, GetParam(), base_options());
  ASSERT_FALSE(r.ritz_values.empty());
  EXPECT_NEAR(r.ritz_values.back(), p.reference.values.back(), 1e-5);
  EXPECT_EQ(r.timing.iterations, 30);
  EXPECT_GT(r.timing.total_seconds, 0.0);
}

TEST_P(LanczosVersions, CoefficientsMatchLibcsrExactly) {
  Problem p = fem_problem();
  const auto ref = lanczos(p.csr, p.csb, 12, Version::kLibCsr, base_options());
  const auto got = lanczos(p.csr, p.csb, 12, GetParam(), base_options());
  ASSERT_EQ(ref.alphas.size(), got.alphas.size());
  for (std::size_t i = 0; i < ref.alphas.size(); ++i) {
    // Different summation orders: allow rounding-level divergence only.
    EXPECT_NEAR(got.alphas[i], ref.alphas[i], 1e-8 * std::abs(ref.alphas[i]) + 1e-10);
    EXPECT_NEAR(got.betas[i], ref.betas[i], 1e-8 * std::abs(ref.betas[i]) + 1e-10);
  }
}

INSTANTIATE_TEST_SUITE_P(AllVersions, LanczosVersions,
                         ::testing::ValuesIn(kAllVersions),
                         [](const auto& info) {
                           return std::string(to_string(info.param)) == "hpx-flux"
                                      ? "hpx_flux"
                                      : std::string(to_string(info.param)) == "regent-rgt"
                                            ? "regent_rgt"
                                            : to_string(info.param);
                         });

class LobpcgVersions : public ::testing::TestWithParam<Version> {};

TEST_P(LobpcgVersions, LowestEigenvaluesMatchDense) {
  Problem p = fem_problem();
  LobpcgOptions o;
  static_cast<SolverOptions&>(o) = base_options();
  o.nev = 4;
  o.tolerance = 1e-7;
  auto r = lobpcg(p.csr, p.csb, 35, GetParam(), o);
  ASSERT_EQ(r.eigenvalues.size(), 4u);
  for (int j = 0; j < 4; ++j) {
    EXPECT_NEAR(r.eigenvalues[static_cast<std::size_t>(j)],
                p.reference.values[static_cast<std::size_t>(j)], 1e-5)
        << "eigenpair " << j;
  }
  EXPECT_GT(r.converged, 0);
}

INSTANTIATE_TEST_SUITE_P(AllVersions, LobpcgVersions,
                         ::testing::ValuesIn(kAllVersions),
                         [](const auto& info) {
                           return std::string(to_string(info.param)) == "hpx-flux"
                                      ? "hpx_flux"
                                      : std::string(to_string(info.param)) == "regent-rgt"
                                            ? "regent_rgt"
                                            : to_string(info.param);
                         });

TEST(LanczosOptions, SkipEmptyOffStillCorrect) {
  Problem p = fem_problem(16); // small blocks: many empty ones
  SolverOptions o = base_options(16);
  o.skip_empty_blocks = false;
  for (Version v : {Version::kDs, Version::kFlux, Version::kRgt}) {
    auto r = lanczos(p.csr, p.csb, 30, v, o);
    EXPECT_NEAR(r.ritz_values.back(), p.reference.values.back(), 1e-4)
        << to_string(v);
  }
}

TEST(LanczosOptions, ReductionBasedSpmmCorrectForDsAndRgt) {
  Problem p = fem_problem();
  SolverOptions o = base_options();
  o.dependency_based_spmm = false;
  for (Version v : {Version::kDs, Version::kRgt}) {
    auto r = lanczos(p.csr, p.csb, 30, v, o);
    EXPECT_NEAR(r.ritz_values.back(), p.reference.values.back(), 1e-4)
        << to_string(v);
  }
}

TEST(LobpcgOptions, ReductionBasedSpmmCorrect) {
  Problem p = fem_problem();
  LobpcgOptions o;
  static_cast<SolverOptions&>(o) = base_options();
  o.nev = 3;
  o.dependency_based_spmm = false;
  for (Version v : {Version::kDs, Version::kRgt}) {
    auto r = lobpcg(p.csr, p.csb, 30, v, o);
    for (int j = 0; j < 3; ++j) {
      EXPECT_NEAR(r.eigenvalues[static_cast<std::size_t>(j)],
                  p.reference.values[static_cast<std::size_t>(j)], 1e-4)
          << to_string(v);
    }
  }
}

TEST(SolverOptions, NumaDomainsAndNoFirstTouch) {
  Problem p = fem_problem();
  SolverOptions o = base_options();
  o.numa_domains = 2;
  o.first_touch = false;
  auto r = lanczos(p.csr, p.csb, 30, Version::kFlux, o);
  EXPECT_NEAR(r.ritz_values.back(), p.reference.values.back(), 1e-4);
}

TEST(Solvers, TraceRecordingProducesEvents) {
  Problem p = fem_problem();
  perf::TraceRecorder trace(8);
  SolverOptions o = base_options();
  o.trace = &trace;
  (void)lanczos(p.csr, p.csb, 3, Version::kFlux, o);
  EXPECT_GT(trace.events().size(), 10u);
}

TEST(Solvers, DifferentMatrixClassesConverge) {
  struct Case {
    sparse::Coo coo;
    const char* name;
  };
  std::vector<Case> cases;
  cases.push_back({sparse::gen_banded_random(400, 12, 0.4, 7), "banded"});
  cases.push_back({sparse::gen_block_random(30, 10, 0.15, 0.6, 8), "block"});
  cases.push_back({sparse::gen_rmat(8, 6, 0.57, 0.19, 0.19, 9), "rmat"});
  for (auto& c : cases) {
    Problem p(std::move(c.coo), 64);
    SolverOptions o = base_options(64);
    auto r = lanczos(p.csr, p.csb, 40, Version::kDs, o);
    EXPECT_NEAR(r.ritz_values.back(), p.reference.values.back(),
                1e-4 * std::abs(p.reference.values.back()) + 1e-6)
        << c.name;
  }
}

TEST(Solvers, LobpcgResidualsDecrease) {
  Problem p = fem_problem();
  LobpcgOptions o;
  static_cast<SolverOptions&>(o) = base_options();
  o.nev = 4;
  o.tolerance = 1e-12; // prevent early exit
  auto r5 = lobpcg(p.csr, p.csb, 5, Version::kLibCsb, o);
  auto r25 = lobpcg(p.csr, p.csb, 25, Version::kLibCsb, o);
  EXPECT_LT(r25.residual_norms[0], r5.residual_norms[0]);
}

TEST(Solvers, DsGraphBuildTimeRecorded) {
  Problem p = fem_problem();
  auto r = lanczos(p.csr, p.csb, 5, Version::kDs, base_options());
  EXPECT_GT(r.timing.graph_build_seconds, 0.0);
}

TEST(Tuning, RecommendedBlockSizeWorksEndToEnd) {
  Problem p = fem_problem();
  (void)p;
  const index_t rows = 216;
  const index_t size = tune::recommended_block_size(Version::kDs, 28, rows);
  EXPECT_GT(size, 0);
  // A fresh CSB at the recommended size still solves correctly.
  sparse::Coo coo = sparse::gen_fem3d(6, 6, 6, 1, 101);
  sparse::Csb csb = sparse::Csb::from_coo(coo, size);
  sparse::Csr csr = sparse::Csr::from_coo(coo);
  SolverOptions o = base_options(size);
  auto r = lanczos(csr, csb, 20, Version::kDs, o);
  EXPECT_FALSE(r.ritz_values.empty());
}

} // namespace
} // namespace sts::solver
