#include <gtest/gtest.h>

#include <cmath>
#include <cctype>
#include <cstdio>
#include <string>
#include <vector>

#include "flux/scheduler.hpp"
#include "la/sptrsv.hpp"
#include "solvers/cg.hpp"
#include "solvers/checkpoint.hpp"
#include "sparse/generators.hpp"
#include "sparse/ic0.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace sts::solver {
namespace {

using la::index_t;

struct Problem {
  sparse::Coo coo;
  sparse::Csr csr;
  sparse::Csb csb;

  Problem(sparse::Coo c, index_t block)
      : coo(std::move(c)),
        csr(sparse::Csr::from_coo(coo)),
        csb(sparse::Csb::from_coo(coo, block)) {}
};

Problem spd_problem(index_t block = 32) {
  return Problem(sparse::gen_laplacian3d(6, 6, 6, 1, 101), block);
}

SolverOptions base_options(index_t block = 32) {
  SolverOptions o;
  o.block_size = block;
  o.threads = 2;
  return o;
}

/// Dense y = M x for a CSR matrix (reference kernel for the solve checks).
std::vector<double> csr_apply(const sparse::Csr& a,
                              const std::vector<double>& x) {
  std::vector<double> y(static_cast<std::size_t>(a.rows()), 0.0);
  const auto rp = a.rowptr();
  const auto ci = a.colidx();
  const auto va = a.values();
  for (index_t i = 0; i < a.rows(); ++i) {
    double acc = 0.0;
    for (std::int64_t t = rp[static_cast<std::size_t>(i)];
         t < rp[static_cast<std::size_t>(i) + 1]; ++t) {
      acc += va[static_cast<std::size_t>(t)] *
             x[static_cast<std::size_t>(ci[static_cast<std::size_t>(t)])];
    }
    y[static_cast<std::size_t>(i)] = acc;
  }
  return y;
}

/// y = L^T x via the same CSR rows (column sweep).
std::vector<double> csr_apply_t(const sparse::Csr& l,
                                const std::vector<double>& x) {
  std::vector<double> y(static_cast<std::size_t>(l.rows()), 0.0);
  const auto rp = l.rowptr();
  const auto ci = l.colidx();
  const auto va = l.values();
  for (index_t i = 0; i < l.rows(); ++i) {
    for (std::int64_t t = rp[static_cast<std::size_t>(i)];
         t < rp[static_cast<std::size_t>(i) + 1]; ++t) {
      y[static_cast<std::size_t>(ci[static_cast<std::size_t>(t)])] +=
          va[static_cast<std::size_t>(t)] * x[static_cast<std::size_t>(i)];
    }
  }
  return y;
}

std::vector<double> random_vec(index_t n, std::uint64_t seed) {
  std::vector<double> v(static_cast<std::size_t>(n));
  support::Xoshiro256 rng(seed);
  for (double& e : v) e = rng.uniform(-1.0, 1.0);
  return v;
}

double rel_err(const std::vector<double>& got,
               const std::vector<double>& want) {
  double num = 0.0;
  double den = 0.0;
  for (std::size_t i = 0; i < got.size(); ++i) {
    num += (got[i] - want[i]) * (got[i] - want[i]);
    den += want[i] * want[i];
  }
  return std::sqrt(num / std::max(den, 1e-300));
}

// ---- IC(0) ---------------------------------------------------------------

TEST(Ic0, FactorMatchesMatrixOnRetainedPattern) {
  const Problem p = spd_problem();
  const sparse::Ic0Result fac = sparse::ic0_factor(p.csr);
  EXPECT_EQ(fac.shift, 0.0); // laplacian3d is strictly dominant SPD
  // L L^T must reproduce A exactly on tril(A)'s pattern (the defining
  // property of IC(0): no fill, exact match on retained entries).
  const la::DenseMatrix a = p.coo.to_dense();
  const la::DenseMatrix l = [&] {
    la::DenseMatrix d(p.csr.rows(), p.csr.rows());
    const auto rp = fac.lower.rowptr();
    const auto ci = fac.lower.colidx();
    const auto va = fac.lower.values();
    for (index_t i = 0; i < fac.lower.rows(); ++i) {
      for (std::int64_t t = rp[static_cast<std::size_t>(i)];
           t < rp[static_cast<std::size_t>(i) + 1]; ++t) {
        d.at(i, ci[static_cast<std::size_t>(t)]) =
            va[static_cast<std::size_t>(t)];
      }
    }
    return d;
  }();
  const auto rp = fac.lower.rowptr();
  const auto ci = fac.lower.colidx();
  for (index_t i = 0; i < p.csr.rows(); ++i) {
    for (std::int64_t t = rp[static_cast<std::size_t>(i)];
         t < rp[static_cast<std::size_t>(i) + 1]; ++t) {
      const index_t j = ci[static_cast<std::size_t>(t)];
      double llt = 0.0;
      for (index_t k = 0; k <= j; ++k) llt += l.at(i, k) * l.at(j, k);
      EXPECT_NEAR(llt, a.at(i, j), 1e-9 * (1.0 + std::abs(a.at(i, j))))
          << "at (" << i << "," << j << ")";
    }
  }
}

TEST(Ic0, MissingDiagonalThrows) {
  sparse::Coo coo(3, 3);
  coo.add(0, 0, 2.0);
  coo.add(1, 1, 2.0);
  coo.add(2, 1, 1.0);
  coo.add(1, 2, 1.0); // row 2 has no diagonal
  coo.finalize();
  const sparse::Csr a = sparse::Csr::from_coo(coo);
  EXPECT_THROW((void)sparse::ic0_factor(a), support::Error);
}

TEST(Ic0, IndefiniteMatrixTriggersShift) {
  // [[1, 2], [2, 1]] is symmetric but indefinite: the unshifted pivot at
  // row 1 is 1 - 4 < 0, so the Manteuffel shift loop must kick in.
  sparse::Coo coo(2, 2);
  coo.add(0, 0, 1.0);
  coo.add(1, 1, 1.0);
  coo.add(0, 1, 2.0);
  coo.add(1, 0, 2.0);
  coo.finalize();
  sparse::Ic0Options opts;
  opts.max_shift_attempts = 16; // (1+shift)^2 > 4 needs shift > 1
  const sparse::Ic0Result fac =
      sparse::ic0_factor(sparse::Csr::from_coo(coo), opts);
  EXPECT_GT(fac.shift, 0.0);
  EXPECT_GT(fac.shift_attempts, 0);
}

TEST(Ic0, DiagonalExtraction) {
  const Problem p = spd_problem();
  const std::vector<double> d = sparse::diagonal(p.csr);
  const la::DenseMatrix a = p.coo.to_dense();
  for (index_t i = 0; i < p.csr.rows(); ++i) {
    EXPECT_EQ(d[static_cast<std::size_t>(i)], a.at(i, i));
  }
}

// ---- SpTRSV --------------------------------------------------------------

class SptrsvBlockSizes : public ::testing::TestWithParam<index_t> {};

TEST_P(SptrsvBlockSizes, ForwardAndBackwardMatchReference) {
  const index_t block = GetParam();
  const Problem p = spd_problem(block);
  const sparse::Ic0Result fac = sparse::ic0_factor(p.csr);
  const sparse::Csb lcsb = sparse::Csb::from_csr(fac.lower, block);
  const la::SptrsvPlan plan = la::SptrsvPlan::build(lcsb);
  EXPECT_EQ(plan.block_rows(), lcsb.block_rows());
  EXPECT_GE(plan.level_span(), 1);
  EXPECT_GE(plan.max_level_width(), 1);

  const std::vector<double> b = random_vec(p.csr.rows(), 7);
  std::vector<double> x(b.size(), 0.0);
  la::sptrsv_forward(lcsb, plan, b, x);
  EXPECT_LT(rel_err(csr_apply(fac.lower, x), b), 1e-12);

  std::vector<double> y(b.size(), 0.0);
  la::sptrsv_backward(lcsb, plan, b, y);
  EXPECT_LT(rel_err(csr_apply_t(fac.lower, y), b), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(BlockSizes, SptrsvBlockSizes,
                         ::testing::Values(4, 16, 64, 512));

TEST(Sptrsv, DagExecutionMatchesSequential) {
  const index_t block = 16;
  // Scattered block structure so the DAG has real width, not a chain.
  Problem p(sparse::gen_block_random(12, 16, 0.25, 0.5, 11), block);
  // Make it SPD enough to factor: boost the diagonal.
  sparse::Coo boosted(p.csr.rows(), p.csr.rows());
  {
    const la::DenseMatrix d = p.coo.to_dense();
    for (index_t i = 0; i < p.csr.rows(); ++i) {
      for (index_t j = 0; j < p.csr.rows(); ++j) {
        if (i == j) {
          boosted.add(i, j, d.at(i, j) + 64.0);
        } else if (d.at(i, j) != 0.0) {
          boosted.add(i, j, d.at(i, j));
        }
      }
    }
    boosted.finalize();
  }
  const sparse::Csr a = sparse::Csr::from_coo(boosted);
  const sparse::Ic0Result fac = sparse::ic0_factor(a);
  const sparse::Csb lcsb = sparse::Csb::from_csr(fac.lower, block);
  const la::SptrsvPlan plan = la::SptrsvPlan::build(lcsb);

  const std::vector<double> b = random_vec(a.rows(), 13);
  std::vector<double> seq_f(b.size(), 0.0), seq_b(b.size(), 0.0);
  la::sptrsv_forward(lcsb, plan, b, seq_f);
  la::sptrsv_backward(lcsb, plan, b, seq_b);

  flux::Scheduler::Config cfg;
  cfg.threads = 4;
  flux::Scheduler sched(cfg);
  std::vector<double> dag_f(b.size(), 0.0), dag_b(b.size(), 0.0);
  la::sptrsv_forward(lcsb, plan, b, dag_f, sched, nullptr);
  la::sptrsv_backward(lcsb, plan, b, dag_b, sched, nullptr);
  sched.wait_for_quiescence();

  // Same per-block kernels in both paths: results are bit-identical.
  EXPECT_EQ(seq_f, dag_f);
  EXPECT_EQ(seq_b, dag_b);
}

// ---- Randomized properties -----------------------------------------------

// One pass per seed over the three invariants the analytic tests pin down
// individually: IC(0) reproduces A exactly on the retained pattern, the
// triangular solves invert L / L^T to machine precision for a random
// right-hand side, and preconditioned CG converges below tolerance. Every
// generated Laplacian is SPD by construction, so a failure here is a
// solver bug, not a matrix-conditioning accident.
TEST(CgProperties, RandomizedLaplaciansFactorSolveConverge) {
  const std::uint64_t seeds[] = {3, 17, 29, 4242};
  const index_t blocks[] = {8, 16, 32, 64};
  for (std::size_t trial = 0; trial < std::size(seeds); ++trial) {
    SCOPED_TRACE("seed " + std::to_string(seeds[trial]));
    const index_t block = blocks[trial];
    const Problem p(sparse::gen_laplacian3d(5, 5, 4, 1, seeds[trial]), block);
    const index_t n = p.csr.rows();

    // IC(0): unshifted success and the no-fill identity on tril(A).
    const sparse::Ic0Result fac = sparse::ic0_factor(p.csr);
    EXPECT_EQ(fac.shift, 0.0);
    const la::DenseMatrix a = p.coo.to_dense();
    la::DenseMatrix l(n, n);
    {
      const auto rp = fac.lower.rowptr();
      const auto ci = fac.lower.colidx();
      const auto va = fac.lower.values();
      for (index_t i = 0; i < n; ++i) {
        for (std::int64_t t = rp[static_cast<std::size_t>(i)];
             t < rp[static_cast<std::size_t>(i) + 1]; ++t) {
          l.at(i, ci[static_cast<std::size_t>(t)]) =
              va[static_cast<std::size_t>(t)];
        }
      }
      for (index_t i = 0; i < n; ++i) {
        for (std::int64_t t = rp[static_cast<std::size_t>(i)];
             t < rp[static_cast<std::size_t>(i) + 1]; ++t) {
          const index_t j = ci[static_cast<std::size_t>(t)];
          double llt = 0.0;
          for (index_t k = 0; k <= j; ++k) llt += l.at(i, k) * l.at(j, k);
          EXPECT_NEAR(llt, a.at(i, j), 1e-9 * (1.0 + std::abs(a.at(i, j))))
              << "at (" << i << "," << j << ")";
        }
      }
    }

    // SpTRSV: forward and backward solves against a random b.
    const sparse::Csb lcsb = sparse::Csb::from_csr(fac.lower, block);
    const la::SptrsvPlan plan = la::SptrsvPlan::build(lcsb);
    const std::vector<double> b =
        random_vec(n, seeds[trial] * 977 + 1);
    std::vector<double> x(b.size(), 0.0);
    la::sptrsv_forward(lcsb, plan, b, x);
    EXPECT_LT(rel_err(csr_apply(fac.lower, x), b), 1e-12);
    std::vector<double> y(b.size(), 0.0);
    la::sptrsv_backward(lcsb, plan, b, y);
    EXPECT_LT(rel_err(csr_apply_t(fac.lower, y), b), 1e-12);

    // CG: every preconditioner drives the relative residual below tol
    // (version coverage lives in the CgVersions parameterized suite).
    for (const Precond pre :
         {Precond::kNone, Precond::kJacobi, Precond::kIc0}) {
      CgOptions cg_options;
      cg_options.precond = pre;
      cg_options.tol = 1e-9;
      cg_options.max_iterations = 400;
      SolverOptions options = base_options(block);
      options.seed = seeds[trial] + 5;
      const CgResult r =
          cg(p.csr, p.csb, Version::kLibCsr, cg_options, options);
      EXPECT_TRUE(r.converged) << "precond " << to_string(pre);
      EXPECT_LE(r.relative_residual, cg_options.tol);
      EXPECT_EQ(r.status, SolverStatus::kOk);
    }
  }
}

TEST(Sptrsv, RejectsNonTriangularMatrix) {
  const Problem p = spd_problem(16);
  EXPECT_THROW((void)la::SptrsvPlan::build(p.csb), support::Error);
}

TEST(Sptrsv, LevelScheduleCoversAllBlockRowsOnce) {
  const Problem p = spd_problem(16);
  const sparse::Ic0Result fac = sparse::ic0_factor(p.csr);
  const sparse::Csb lcsb = sparse::Csb::from_csr(fac.lower, 16);
  const la::SptrsvPlan plan = la::SptrsvPlan::build(lcsb);
  std::vector<int> seen(static_cast<std::size_t>(plan.block_rows()), 0);
  for (const auto& wave : plan.levels()) {
    for (const index_t bi : wave) ++seen[static_cast<std::size_t>(bi)];
  }
  for (const int c : seen) EXPECT_EQ(c, 1);
}

// ---- CG ------------------------------------------------------------------

struct CgCase {
  Version version;
  Precond precond;
};

std::string cg_case_name(const ::testing::TestParamInfo<CgCase>& info) {
  std::string name = std::string(to_string(info.param.version)) + "_" +
                     to_string(info.param.precond);
  for (char& c : name) {
    if (std::isalnum(static_cast<unsigned char>(c)) == 0) c = '_';
  }
  return name;
}

class CgVersions : public ::testing::TestWithParam<CgCase> {};

TEST_P(CgVersions, ConvergesOnLaplacian3d) {
  const Problem p = spd_problem();
  CgOptions cg_opts;
  cg_opts.precond = GetParam().precond;
  cg_opts.tol = 1e-9;
  cg_opts.max_iterations = 400;
  const SolverOptions opts = base_options();
  const CgResult r = cg(p.csr, p.csb, GetParam().version, cg_opts, opts);
  EXPECT_TRUE(r.converged) << "residual " << r.relative_residual;
  EXPECT_EQ(r.status, SolverStatus::kOk);
  EXPECT_LE(r.relative_residual, cg_opts.tol);
  EXPECT_EQ(r.iterations, static_cast<int>(r.residual_norms.size()));
  if (GetParam().precond == Precond::kIc0) {
    EXPECT_GE(r.level_span, 1);
  }
  // The returned x must actually solve A x = b for the b the solver drew.
  const std::vector<double> b = random_vec(p.csr.rows(), opts.seed);
  const std::vector<double> ax = csr_apply(p.csr, r.x);
  EXPECT_LT(rel_err(ax, b), cg_opts.tol * 100);
}

INSTANTIATE_TEST_SUITE_P(
    VersionsAndPreconds, CgVersions,
    ::testing::Values(CgCase{Version::kLibCsr, Precond::kNone},
                      CgCase{Version::kLibCsr, Precond::kJacobi},
                      CgCase{Version::kLibCsr, Precond::kIc0},
                      CgCase{Version::kLibCsb, Precond::kNone},
                      CgCase{Version::kLibCsb, Precond::kJacobi},
                      CgCase{Version::kLibCsb, Precond::kIc0},
                      CgCase{Version::kFlux, Precond::kNone},
                      CgCase{Version::kFlux, Precond::kJacobi},
                      CgCase{Version::kFlux, Precond::kIc0}),
    cg_case_name);

TEST(Cg, PreconditioningReducesIterationCount) {
  const Problem p = spd_problem();
  CgOptions plain;
  plain.tol = 1e-9;
  plain.max_iterations = 400;
  CgOptions ic0 = plain;
  ic0.precond = Precond::kIc0;
  const SolverOptions opts = base_options();
  const CgResult r_plain = cg(p.csr, p.csb, Version::kLibCsb, plain, opts);
  const CgResult r_ic0 = cg(p.csr, p.csb, Version::kLibCsb, ic0, opts);
  ASSERT_TRUE(r_plain.converged);
  ASSERT_TRUE(r_ic0.converged);
  EXPECT_LT(r_ic0.iterations, r_plain.iterations);
}

TEST(Cg, UnsupportedVersionsThrow) {
  const Problem p = spd_problem();
  const CgOptions cg_opts;
  EXPECT_THROW((void)cg(p.csr, p.csb, Version::kDs, cg_opts, base_options()),
               support::Error);
  EXPECT_THROW((void)cg(p.csr, p.csb, Version::kRgt, cg_opts, base_options()),
               support::Error);
}

TEST(Cg, ResidualHistoryIsMonotonicallyReportedAndFinal) {
  const Problem p = spd_problem();
  CgOptions cg_opts;
  cg_opts.tol = 1e-9;
  cg_opts.max_iterations = 400;
  const CgResult r = cg(p.csr, p.csb, Version::kLibCsr, cg_opts,
                        base_options());
  ASSERT_TRUE(r.converged);
  ASSERT_FALSE(r.residual_norms.empty());
  EXPECT_EQ(r.residual_norms.back(), r.relative_residual);
}

TEST(Cg, CheckpointRoundTripResumesAndMatchesUninterrupted) {
  const Problem p = spd_problem();
  const std::string path = ::testing::TempDir() + "/cg_ckpt_test.stsckpt";
  CgOptions short_opts;
  short_opts.precond = Precond::kJacobi;
  short_opts.tol = 1e-30; // never converges: exercise the iteration cap
  short_opts.max_iterations = 6;
  SolverOptions opts = base_options();
  opts.ckpt_path = path;
  opts.ckpt_every = 3;
  const CgResult first = cg(p.csr, p.csb, Version::kLibCsr, short_opts, opts);
  EXPECT_EQ(first.iterations, 6);

  const ckpt::Checkpoint c = ckpt::load(path);
  ASSERT_EQ(c.kind, ckpt::Kind::kCg);
  EXPECT_EQ(c.cg.iterations, 6);
  EXPECT_EQ(c.cg.seed, opts.seed);

  // Resume for 6 more; compare with one uninterrupted 12-iteration run.
  CgOptions long_opts = short_opts;
  long_opts.max_iterations = 12;
  SolverOptions resume_opts = base_options();
  resume_opts.restore = &c;
  const CgResult resumed =
      cg(p.csr, p.csb, Version::kLibCsr, long_opts, resume_opts);
  EXPECT_EQ(resumed.iterations, 6); // 6 accepted after the restored 6

  const CgResult straight =
      cg(p.csr, p.csb, Version::kLibCsr, long_opts, base_options());
  ASSERT_EQ(straight.x.size(), resumed.x.size());
  EXPECT_LT(rel_err(resumed.x, straight.x), 1e-12);
  std::remove(path.c_str());
}

TEST(Cg, RestoreRejectsWrongKindAndSeed) {
  const Problem p = spd_problem();
  ckpt::Checkpoint wrong_kind;
  wrong_kind.kind = ckpt::Kind::kLanczos;
  SolverOptions opts = base_options();
  opts.restore = &wrong_kind;
  EXPECT_THROW((void)cg(p.csr, p.csb, Version::kLibCsr, {}, opts),
               support::Error);

  ckpt::Checkpoint wrong_seed;
  wrong_seed.kind = ckpt::Kind::kCg;
  wrong_seed.cg.seed = 999;
  wrong_seed.cg.m = p.csr.rows();
  const std::size_t n = static_cast<std::size_t>(p.csr.rows());
  wrong_seed.cg.x.assign(n, 0.0);
  wrong_seed.cg.r.assign(n, 0.0);
  wrong_seed.cg.p.assign(n, 0.0);
  opts.restore = &wrong_seed;
  EXPECT_THROW((void)cg(p.csr, p.csb, Version::kLibCsr, {}, opts),
               support::Error);
}

TEST(Cg, InvalidOptionsThrow) {
  const Problem p = spd_problem();
  CgOptions bad_tol;
  bad_tol.tol = 0.0;
  EXPECT_THROW((void)cg(p.csr, p.csb, Version::kLibCsr, bad_tol,
                        base_options()),
               support::Error);
  CgOptions bad_it;
  bad_it.max_iterations = 0;
  EXPECT_THROW((void)cg(p.csr, p.csb, Version::kLibCsr, bad_it,
                        base_options()),
               support::Error);
}

TEST(Cg, PrecondNamesRoundTrip) {
  EXPECT_STREQ(to_string(Precond::kNone), "none");
  EXPECT_STREQ(to_string(Precond::kJacobi), "jacobi");
  EXPECT_STREQ(to_string(Precond::kIc0), "ic0");
}

} // namespace
} // namespace sts::solver
