#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cmath>
#include <stdexcept>

#include "ds/builder.hpp"
#include "ds/executor.hpp"
#include "ds/program.hpp"
#include "sparse/generators.hpp"
#include "support/error.hpp"
#include "support/fault.hpp"
#include "support/rng.hpp"

namespace sts::ds {
namespace {

using graph::KernelKind;
using graph::Task;
using la::DenseMatrix;
using la::index_t;

TEST(GraphBuilder, WiresRawWarWaw) {
  GraphBuilder b;
  const DataId d = b.register_data("d", 1, 64);
  const DataPiece piece{d, 0};
  // w0 writes, r1 reads (RAW edge w0->r1), w2 writes (WAR r1->w2, WAW
  // w0->w2 is subsumed since readers were cleared... the builder links
  // last_writer too).
  const auto w0 = b.add_task(Task{}, {}, {&piece, 1});
  const auto r1 = b.add_task(Task{}, {&piece, 1}, {});
  const auto w2 = b.add_task(Task{}, {}, {&piece, 1});
  const auto& g = b.graph();
  ASSERT_EQ(g.task_count(), 3u);
  EXPECT_EQ(g.successors(w0).size(), 2u); // -> r1 (RAW) and -> w2 (WAW)
  ASSERT_EQ(g.successors(r1).size(), 1u);
  EXPECT_EQ(g.successors(r1)[0], w2);
  EXPECT_TRUE(g.is_acyclic());
}

TEST(GraphBuilder, PieceGranularityAvoidsFalseEdges) {
  GraphBuilder b;
  const DataId d = b.register_data("d", 4, 256);
  for (std::int32_t p = 0; p < 4; ++p) {
    const DataPiece piece{d, p};
    b.add_task(Task{}, {}, {&piece, 1});
  }
  for (std::size_t t = 0; t < b.graph().task_count(); ++t) {
    EXPECT_TRUE(b.graph().successors(static_cast<graph::TaskId>(t)).empty());
  }
}

TEST(GraphBuilder, WholeStructureConflictsWithEveryPiece) {
  GraphBuilder b;
  const DataId d = b.register_data("d", 4, 256);
  const DataPiece whole{d, -1};
  const auto w = b.add_task(Task{}, {}, {&whole, 1});
  const DataPiece piece{d, 2};
  const auto r = b.add_task(Task{}, {&piece, 1}, {});
  (void)r;
  ASSERT_EQ(b.graph().successors(w).size(), 1u);
}

struct ProgramFixture {
  sparse::Coo coo;
  sparse::Csb csb;
  DenseMatrix dense;

  explicit ProgramFixture(index_t block = 32)
      : coo(sparse::gen_fem3d(5, 5, 5, 1, 31)),
        csb(sparse::Csb::from_coo(coo, block)),
        dense(coo.to_dense()) {}
};

class ProgramExecModes : public ::testing::TestWithParam<ExecMode> {};

TEST_P(ProgramExecModes, SpmmKernelMatchesDense) {
  ProgramFixture f;
  const index_t m = f.csb.rows();
  DenseMatrix x(m, 4);
  DenseMatrix y(m, 4);
  support::Xoshiro256 rng(5);
  x.fill_random(rng);
  Program prog(&f.csb, {});
  const DataId xid = prog.vec("x", &x);
  const DataId yid = prog.vec("y", &y);
  prog.spmm(xid, yid);
  const graph::Tdg g = prog.build();
  execute(g, {.mode = GetParam(), .trace = nullptr});
  for (index_t i = 0; i < m; ++i) {
    for (index_t j = 0; j < 4; ++j) {
      double acc = 0.0;
      for (index_t c = 0; c < m; ++c) acc += f.dense.at(i, c) * x.at(c, j);
      ASSERT_NEAR(y.at(i, j), acc, 1e-10);
    }
  }
}

TEST_P(ProgramExecModes, FullKernelPipelineIsCorrect) {
  ProgramFixture f(17);
  const index_t m = f.csb.rows();
  DenseMatrix x(m, 3);
  DenseMatrix y(m, 3);
  DenseMatrix z(3, 3);
  DenseMatrix p(3, 3);
  support::Xoshiro256 rng(6);
  x.fill_random(rng);
  z.fill_random(rng);
  double dot_result = 0.0;
  double norm_result = 0.0;
  (void)y;

  DenseMatrix y2(m, 3);
  DenseMatrix q(m, 3);
  Program prog2(&f.csb, {});
  const DataId x2 = prog2.vec("x", &x);
  const DataId y2id = prog2.vec("y", &y2);
  const DataId q2 = prog2.vec("q", &q);
  const DataId z2 = prog2.small("z", &z);
  const DataId p2 = prog2.small("p", &p);
  const DataId dot2 = prog2.scalar("dot", &dot_result);
  const DataId norm2 = prog2.scalar("norm", &norm_result);
  prog2.spmm(x2, y2id);             // y2 = A x
  prog2.xy(y2id, z2, q2, 1.0, 0.0); // q = y2 z
  prog2.xty(y2id, q2, p2);          // p = y2^T q
  prog2.dot(q2, q2, dot2);          // dot = <q, q>
  prog2.small_task(KernelKind::kNorm,
                   [&] { norm_result = std::sqrt(dot_result); }, {dot2},
                   {norm2});
  const graph::Tdg g = prog2.build();
  EXPECT_TRUE(g.is_acyclic());
  execute(g, {.mode = GetParam(), .trace = nullptr});

  // Reference.
  DenseMatrix y_ref(m, 3);
  for (index_t i = 0; i < m; ++i) {
    for (index_t j = 0; j < 3; ++j) {
      double acc = 0.0;
      for (index_t c = 0; c < m; ++c) acc += f.dense.at(i, c) * x.at(c, j);
      y_ref.at(i, j) = acc;
    }
  }
  DenseMatrix q_ref(m, 3);
  la::gemm(1.0, y_ref.view(), z.view(), 0.0, q_ref.view());
  DenseMatrix p_ref(3, 3);
  la::gemm_tn(1.0, y_ref.view(), q_ref.view(), 0.0, p_ref.view());
  for (index_t i = 0; i < 3; ++i) {
    for (index_t j = 0; j < 3; ++j) {
      ASSERT_NEAR(p.at(i, j), p_ref.at(i, j), 1e-8);
    }
  }
  EXPECT_NEAR(dot_result, la::dot(q_ref.view(), q_ref.view()), 1e-8);
  EXPECT_NEAR(norm_result, la::norm_fro(q_ref.view()), 1e-10);
}

TEST_P(ProgramExecModes, ReductionBasedSpmmMatchesDependencyBased) {
  ProgramFixture f(25);
  const index_t m = f.csb.rows();
  DenseMatrix x(m, 2);
  support::Xoshiro256 rng(7);
  x.fill_random(rng);

  DenseMatrix y_dep(m, 2);
  Program dep(&f.csb, {.skip_empty_blocks = true,
                       .dependency_based_spmm = true,
                       .spmm_buffers = 3});
  dep.spmm(dep.vec("x", &x), dep.vec("y", &y_dep));
  execute(dep.build(), {.mode = GetParam(), .trace = nullptr});

  DenseMatrix y_red(m, 2);
  Program red(&f.csb, {.skip_empty_blocks = true,
                       .dependency_based_spmm = false,
                       .spmm_buffers = 3});
  red.spmm(red.vec("x", &x), red.vec("y", &y_red));
  execute(red.build(), {.mode = GetParam(), .trace = nullptr});

  for (index_t i = 0; i < m; ++i) {
    for (index_t j = 0; j < 2; ++j) {
      ASSERT_NEAR(y_dep.at(i, j), y_red.at(i, j), 1e-10);
    }
  }
}

TEST_P(ProgramExecModes, VectorKernels) {
  ProgramFixture f(40);
  const index_t m = f.csb.rows();
  DenseMatrix x(m, 2);
  DenseMatrix y(m, 2);
  DenseMatrix w(m, 1);
  DenseMatrix wide(m, 5);
  support::Xoshiro256 rng(8);
  x.fill_random(rng);
  y.fill_random(rng);
  w.fill_random(rng);
  DenseMatrix x0 = x.clone();
  DenseMatrix y0 = y.clone();
  double scale_cell = 4.0;

  Program prog(&f.csb, {});
  const DataId xid = prog.vec("x", &x);
  const DataId yid = prog.vec("y", &y);
  const DataId wid = prog.vec("w", &w);
  const DataId wideid = prog.vec("wide", &wide);
  const DataId sid = prog.scalar("s", &scale_cell);
  prog.axpy(2.0, xid, yid);                   // y += 2x
  prog.copy(yid, xid);                        // x = y
  prog.scale_by_scalar(xid, sid, true);       // x /= 4
  static const index_t kCol = 3;
  prog.copy_into_column(wid, wideid, &kCol);  // wide(:,3) = w
  prog.scale_into(wid, sid, false, wid);      // w *= 4  (in place via copy)
  execute(prog.build(), {.mode = GetParam(), .trace = nullptr});

  for (index_t i = 0; i < m; ++i) {
    for (index_t j = 0; j < 2; ++j) {
      const double expected_y = y0.at(i, j) + 2.0 * x0.at(i, j);
      ASSERT_NEAR(y.at(i, j), expected_y, 1e-12);
      ASSERT_NEAR(x.at(i, j), expected_y / 4.0, 1e-12);
    }
    ASSERT_NEAR(wide.at(i, 3), w.at(i, 0) / 4.0, 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Modes, ProgramExecModes,
                         ::testing::Values(ExecMode::kSerial,
                                           ExecMode::kOmpTasks));

TEST(Program, SkipEmptyBlocksShrinksGraph) {
  ProgramFixture f(8); // small blocks: plenty of empty ones in a stencil
  DenseMatrix x(f.csb.rows(), 1);
  DenseMatrix y(f.csb.rows(), 1);

  Program skip(&f.csb, {.skip_empty_blocks = true,
                        .dependency_based_spmm = true,
                        .spmm_buffers = 2});
  skip.spmm(skip.vec("x", &x), skip.vec("y", &y));
  Program noskip(&f.csb, {.skip_empty_blocks = false,
                          .dependency_based_spmm = true,
                          .spmm_buffers = 2});
  noskip.spmm(noskip.vec("x", &x), noskip.vec("y", &y));
  EXPECT_LT(skip.build().task_count(), noskip.build().task_count());
}

TEST(Program, TaskCountMatchesNonemptyBlocks) {
  ProgramFixture f(16);
  DenseMatrix x(f.csb.rows(), 1);
  DenseMatrix y(f.csb.rows(), 1);
  Program prog(&f.csb, {});
  prog.spmm(prog.vec("x", &x), prog.vec("y", &y));
  const graph::Tdg g = prog.build();
  const index_t np = prog.partitions();
  // zero tasks (np) + one task per non-empty block.
  EXPECT_EQ(static_cast<index_t>(g.task_count()),
            np + f.csb.nonempty_blocks());
}

TEST(Executor, OmpMatchesSerialOnRandomGraphs) {
  support::Xoshiro256 rng(55);
  for (int trial = 0; trial < 5; ++trial) {
    const int n = 100;
    graph::Tdg g;
    std::vector<std::atomic<int>*> order_box;
    std::vector<int> finish_order(n, -1);
    std::atomic<int> counter{0};
    for (int i = 0; i < n; ++i) {
      graph::Task t;
      t.body = [&finish_order, &counter, i] {
        finish_order[static_cast<std::size_t>(i)] = counter.fetch_add(1);
      };
      g.add_task(std::move(t));
    }
    for (int i = 0; i < n; ++i) {
      for (int rep = 0; rep < 2; ++rep) {
        const int j = i + 1 + static_cast<int>(rng.below(
                                  static_cast<std::uint64_t>(n - i)));
        if (j < n) {
          g.add_edge(static_cast<graph::TaskId>(i),
                     static_cast<graph::TaskId>(j));
        }
      }
    }
    execute(g, {.mode = ExecMode::kOmpTasks, .trace = nullptr});
    // Every task ran exactly once and dependencies were respected.
    for (int i = 0; i < n; ++i) {
      ASSERT_GE(finish_order[static_cast<std::size_t>(i)], 0);
      for (graph::TaskId s : g.successors(static_cast<graph::TaskId>(i))) {
        ASSERT_LT(finish_order[static_cast<std::size_t>(i)],
                  finish_order[static_cast<std::size_t>(s)]);
      }
    }
    ASSERT_EQ(counter.load(), n);
  }
}

TEST(Executor, MidGraphThrowSurfacesOneTaskErrorAndSkipsSuccessors) {
  for (const ExecMode mode : {ExecMode::kSerial, ExecMode::kOmpTasks}) {
    graph::Tdg g;
    std::atomic<bool> ran_pre{false};
    std::atomic<bool> ran_after{false};
    graph::Task pre;
    pre.body = [&] { ran_pre = true; };
    const auto t0 = g.add_task(std::move(pre));
    graph::Task bad;
    bad.kind = graph::KernelKind::kSpMV;
    bad.bi = 2;
    bad.bj = 1;
    bad.body = [] { throw std::runtime_error("boom"); };
    const auto t1 = g.add_task(std::move(bad));
    graph::Task after;
    after.body = [&] { ran_after = true; };
    const auto t2 = g.add_task(std::move(after));
    g.add_edge(t0, t1);
    g.add_edge(t1, t2);
    try {
      execute(g, {.mode = mode, .trace = nullptr});
      FAIL() << "expected TaskError";
    } catch (const support::TaskError& e) {
      EXPECT_EQ(e.task(), "spmv[2,1]");
      EXPECT_NE(std::string(e.what()).find("boom"), std::string::npos);
    }
    EXPECT_TRUE(ran_pre.load());
    EXPECT_FALSE(ran_after.load()); // successor readiness stays poisoned
  }
}

TEST(Executor, ReusableAfterFailure) {
  graph::Tdg bad;
  graph::Task t;
  t.body = [] { throw std::runtime_error("boom"); };
  bad.add_task(std::move(t));
  EXPECT_THROW(execute(bad, {.mode = ExecMode::kOmpTasks, .trace = nullptr}),
               support::TaskError);
  // The failure is contained to that execute() call.
  ProgramFixture f;
  DenseMatrix x(f.csb.rows(), 1);
  DenseMatrix y(f.csb.rows(), 1);
  x.fill(1.0);
  Program prog(&f.csb, {});
  prog.spmm(prog.vec("x", &x), prog.vec("y", &y));
  EXPECT_NO_THROW(
      execute(prog.build(), {.mode = ExecMode::kOmpTasks, .trace = nullptr}));
}

TEST(Executor, InjectedFaultNamesFailingTask) {
  support::fault::ScopedFault inject("ds:task:hit=2");
  graph::Tdg g;
  std::array<graph::KernelKind, 3> kinds = {graph::KernelKind::kZero,
                                            graph::KernelKind::kSpMV,
                                            graph::KernelKind::kReduce};
  graph::TaskId prev = 0;
  for (int i = 0; i < 3; ++i) {
    graph::Task t;
    t.kind = kinds[static_cast<std::size_t>(i)];
    t.bi = i;
    const auto id = g.add_task(std::move(t));
    if (i > 0) g.add_edge(prev, id);
    prev = id;
  }
  try {
    execute(g, {.mode = ExecMode::kOmpTasks, .trace = nullptr});
    FAIL() << "expected TaskError from the injected fault";
  } catch (const support::TaskError& e) {
    EXPECT_EQ(e.task(), "spmv[1]"); // second task in the chain
    EXPECT_NE(std::string(e.what()).find("ds:task"), std::string::npos);
  }
}

TEST(Executor, RecordsTraceEvents) {
  ProgramFixture f(32);
  DenseMatrix x(f.csb.rows(), 1);
  DenseMatrix y(f.csb.rows(), 1);
  Program prog(&f.csb, {});
  prog.spmm(prog.vec("x", &x), prog.vec("y", &y));
  const graph::Tdg g = prog.build();
  perf::TraceRecorder trace(8);
  execute(g, {.mode = ExecMode::kOmpTasks, .trace = &trace});
  const auto events = trace.events();
  EXPECT_EQ(events.size(), g.task_count());
  for (const auto& ev : events) {
    EXPECT_GE(ev.end_ns, ev.start_ns);
  }
}

} // namespace
} // namespace sts::ds
