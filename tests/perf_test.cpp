#include <gtest/gtest.h>

#include <sstream>

#include "perf/profiles.hpp"
#include "perf/trace.hpp"

namespace sts::perf {
namespace {

TaskEvent ev(graph::KernelKind kind, int worker, std::int64_t start,
             std::int64_t end) {
  TaskEvent e;
  e.kind = kind;
  e.worker = worker;
  e.start_ns = start;
  e.end_ns = end;
  return e;
}

TEST(TraceRecorder, MergesAndRebasesLanes) {
  TraceRecorder rec(2);
  rec.record(0, ev(graph::KernelKind::kSpMM, 0, 1000, 1500));
  rec.record(1, ev(graph::KernelKind::kXY, 1, 1200, 1400));
  rec.record(0, ev(graph::KernelKind::kXTY, 0, 1600, 1700));
  const auto events = rec.events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].start_ns, 0);   // rebased to earliest start
  EXPECT_EQ(events[0].kind, graph::KernelKind::kSpMM);
  EXPECT_EQ(events[1].start_ns, 200);
  EXPECT_EQ(events[2].end_ns, 700);
}

TEST(TraceRecorder, ClearEmptiesLanes) {
  TraceRecorder rec(1);
  rec.record(0, ev(graph::KernelKind::kSpMM, 0, 0, 10));
  rec.clear();
  EXPECT_TRUE(rec.events().empty());
}

TEST(TraceRecorder, OutOfRangeWorkerLandsInOverflowLane) {
  // Regression: a worker id at/past the lane count (e.g. a helper thread
  // the caller did not size for) must not crash or drop the event.
  TraceRecorder rec(2);
  rec.record(0, ev(graph::KernelKind::kSpMM, 0, 100, 200));
  rec.record(2, ev(graph::KernelKind::kXY, 2, 150, 250));    // == lanes
  rec.record(99, ev(graph::KernelKind::kXTY, 99, 300, 400)); // way past
  EXPECT_EQ(rec.overflow_count(), 2u);
  const auto events = rec.events();
  ASSERT_EQ(events.size(), 3u); // overflow events merge into events()
  bool saw_xy = false;
  bool saw_xty = false;
  for (const auto& e : events) {
    if (e.kind == graph::KernelKind::kXY) saw_xy = true;
    if (e.kind == graph::KernelKind::kXTY) saw_xty = true;
  }
  EXPECT_TRUE(saw_xy);
  EXPECT_TRUE(saw_xty);
  rec.clear();
  EXPECT_EQ(rec.overflow_count(), 0u);
  EXPECT_TRUE(rec.events().empty());
}

TEST(FlowGraph, CountsConcurrency) {
  std::vector<TaskEvent> events = {
      ev(graph::KernelKind::kSpMM, 0, 0, 100),
      ev(graph::KernelKind::kSpMM, 1, 0, 100),
      ev(graph::KernelKind::kXY, 0, 100, 200),
  };
  const FlowGraph fg = build_flow_graph(events, 2);
  ASSERT_EQ(fg.kinds.size(), 2u);
  ASSERT_EQ(fg.counts.size(), 2u);
  // Bucket 0 has two concurrent spmm tasks, bucket 1 one xy task.
  EXPECT_NEAR(fg.counts[0][0], 2.0, 1e-9);
  EXPECT_NEAR(fg.counts[1][1], 1.0, 1e-9);
}

TEST(FlowGraph, EmptyTraceHandled) {
  const FlowGraph fg = build_flow_graph({}, 4);
  EXPECT_TRUE(fg.kinds.empty());
  std::ostringstream os;
  render_flow_graph(os, fg);
  EXPECT_NE(os.str().find("empty"), std::string::npos);
}

TEST(FlowGraph, CsvHasHeaderAndRows) {
  std::vector<TaskEvent> events = {ev(graph::KernelKind::kSpMV, 0, 0, 50)};
  const FlowGraph fg = build_flow_graph(events, 5);
  std::ostringstream os;
  write_flow_graph_csv(os, fg);
  const std::string csv = os.str();
  EXPECT_NE(csv.find("time_ms,spmv"), std::string::npos);
  // header + 5 buckets
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 6);
}

TEST(FlowGraph, RenderShowsKernelRows) {
  std::vector<TaskEvent> events = {
      ev(graph::KernelKind::kSpMM, 0, 0, 100),
      ev(graph::KernelKind::kReduce, 0, 100, 150),
  };
  const FlowGraph fg = build_flow_graph(events, 10);
  std::ostringstream os;
  render_flow_graph(os, fg, 40);
  EXPECT_NE(os.str().find("spmm"), std::string::npos);
  EXPECT_NE(os.str().find("reduce"), std::string::npos);
}

TEST(Profiles, BestConfigIsAlwaysWithinTauOne) {
  // config0 always best, config1 1.5x slower, config2 3x slower.
  std::vector<std::vector<double>> times = {
      {1.0, 1.5, 3.0}, {2.0, 3.0, 6.0}, {0.5, 0.75, 1.5}};
  const auto curves = performance_profiles({"a", "b", "c"}, times,
                                           {1.0, 1.6, 2.0, 3.0});
  ASSERT_EQ(curves.size(), 3u);
  EXPECT_DOUBLE_EQ(curves[0].fraction[0], 1.0); // within tau=1 always
  EXPECT_DOUBLE_EQ(curves[1].fraction[0], 0.0);
  EXPECT_DOUBLE_EQ(curves[1].fraction[1], 1.0); // 1.5 <= 1.6
  EXPECT_DOUBLE_EQ(curves[2].fraction[2], 0.0);
  EXPECT_DOUBLE_EQ(curves[2].fraction[3], 1.0); // 3.0 <= 3.0
}

TEST(Profiles, MissingRunsNeverQualify) {
  std::vector<std::vector<double>> times = {{1.0, -1.0}};
  const auto curves = performance_profiles({"a", "b"}, times, {10.0});
  EXPECT_DOUBLE_EQ(curves[0].fraction[0], 1.0);
  EXPECT_DOUBLE_EQ(curves[1].fraction[0], 0.0);
}

TEST(Profiles, DefaultTausSpanOneToTwo) {
  const auto taus = default_taus(11);
  ASSERT_EQ(taus.size(), 11u);
  EXPECT_DOUBLE_EQ(taus.front(), 1.0);
  EXPECT_DOUBLE_EQ(taus.back(), 2.0);
}

} // namespace
} // namespace sts::perf
